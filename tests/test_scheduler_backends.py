"""Scheduler-backend selection and the vector admission path.

Covers the plumbing around :mod:`repro.sim.veckernel` (the kernel's
byte-identical-schedule guarantee itself lives in the three-way differential
harness, ``tests/test_engine_equivalence.py``):

* scheduler validation: unknown ``ExecutionPolicy(scheduler=...)`` values and
  ``$REPRO_SIM_SCHEDULER`` values raise a :class:`ConfigurationError` naming
  the bad value — mirroring the existing ``op_backend`` validation;
* argument/environment selection parity for the ``vector`` backend;
* the :class:`~repro.sim.engine.VectorSchedule` surface: lazy materialisation,
  array-backed ``makespan``, inherited queries, validation;
* :class:`~repro.sweep.runner.SweepRunner` scheduler plumbing: validation and
  the explicit policy serialization workers resolve against (no environment
  variables are exported — ``tests/test_runtime_policy.py`` covers the full
  precedence matrix);
* the ``--scheduler`` CLI flag.
"""

import os

import pytest

from repro.cli import build_parser
from repro.common.errors import ConfigurationError
from repro.runtime import ExecutionPolicy
from repro.sim.engine import SimEngine, VectorSchedule, standard_resources
from repro.sim.opbatch import OpBatch
from repro.sim.ops import OpKind, SimOp, reset_op_counter
from repro.sweep import SweepRunner, SweepSpec, configure_defaults, reset_defaults
from repro.training.config import TrainingJobConfig
from repro.training.simulation import SCHEDULER_BACKENDS, simulate_job


@pytest.fixture(scope="module")
def job():
    return TrainingJobConfig(model="7B", strategy="deep-optimizer-states",
                             check_memory=False).resolve()


def _schedule_tuples(schedule):
    return [(item.op.op_id, item.op.name, item.start, item.end) for item in schedule.ops]


# ----------------------------------------------------------------- validation


def test_policy_rejects_unknown_scheduler_backend():
    with pytest.raises(ConfigurationError, match="warp-drive"):
        ExecutionPolicy(scheduler="warp-drive")


def test_simulate_job_rejects_unknown_scheduler_env_value(job, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "quantum")
    with pytest.raises(ConfigurationError, match="quantum"):
        simulate_job(job, 1)


def test_scheduler_error_lists_valid_backends():
    with pytest.raises(ConfigurationError, match="'heap'.*'vector'"):
        ExecutionPolicy(scheduler="nope")


def test_scheduler_argument_overrides_env(job, monkeypatch):
    # A bad env value must not break an explicit, valid argument.
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "quantum")
    result = simulate_job(job, 1, policy=ExecutionPolicy.resolve(scheduler="heap"))
    assert result.schedule.makespan > 0


def test_scheduler_backends_constant_matches_validation(job):
    for name in SCHEDULER_BACKENDS:
        policy = ExecutionPolicy(scheduler=name)
        assert simulate_job(job, 1, policy=policy).schedule.makespan > 0


# ------------------------------------------------------------ selection parity


def test_vector_via_env_equals_vector_via_argument(job, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "vector")
    reset_op_counter()
    via_env = simulate_job(job, 1)
    monkeypatch.delenv("REPRO_SIM_SCHEDULER")
    reset_op_counter()
    via_arg = simulate_job(job, 1, policy=ExecutionPolicy(scheduler="vector"))
    reset_op_counter()
    via_heap = simulate_job(job, 1, policy=ExecutionPolicy(scheduler="heap"))
    assert _schedule_tuples(via_env.schedule) == _schedule_tuples(via_arg.schedule)
    assert _schedule_tuples(via_arg.schedule) == _schedule_tuples(via_heap.schedule)


def test_vector_scheduler_with_objects_op_backend(job):
    reset_op_counter()
    heap = simulate_job(
        job, 2, policy=ExecutionPolicy(op_backend="objects", scheduler="heap")
    )
    reset_op_counter()
    vector = simulate_job(
        job, 2, policy=ExecutionPolicy(op_backend="objects", scheduler="vector")
    )
    assert _schedule_tuples(heap.schedule) == _schedule_tuples(vector.schedule)


# ----------------------------------------------------------- VectorSchedule


def test_run_vector_returns_lazy_vector_schedule():
    engine = SimEngine()
    standard_resources(engine)
    batch = OpBatch()
    first = batch.add_op("first", OpKind.GPU_COMPUTE, "gpu.compute", 2.0)
    batch.add_op("second", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(first,))
    schedule = engine.run_vector(batch)
    assert isinstance(schedule, VectorSchedule)
    # Array-backed makespan works before any op materialisation...
    assert schedule._ops_cache is None
    assert schedule.makespan == 3.0
    assert schedule._ops_cache is None
    # ...and the inherited queries materialise on demand.
    assert schedule.by_id(first).end == 2.0
    assert [item.op.name for item in schedule.ops] == ["first", "second"]
    assert schedule.busy_time("cpu") == 1.0
    schedule.validate()


def test_vector_schedule_compares_equal_across_backends():
    """Schedule equality spans subclasses: vector == heap on the same batch."""
    engine = SimEngine()
    standard_resources(engine)
    batch = OpBatch()
    first = batch.add_op("first", OpKind.GPU_COMPUTE, "gpu.compute", 2.0)
    batch.add_op("second", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(first,))
    assert engine.run_vector(batch) == engine.run_batch(batch)
    assert engine.run_batch(batch) == engine.run_vector(batch)
    other = OpBatch()
    other.add_op("other", OpKind.GPU_COMPUTE, "gpu.compute", 1.0)
    assert engine.run_vector(batch) != engine.run_vector(other)


def test_run_vector_empty_engine_returns_empty_schedule():
    engine = SimEngine()
    standard_resources(engine)
    schedule = engine.run_vector()
    assert schedule.ops == [] and schedule.makespan == 0.0


def test_run_vector_is_single_shot_for_eager_submissions():
    engine = SimEngine()
    standard_resources(engine)
    engine.submit(SimOp("only", OpKind.GPU_COMPUTE, "gpu.compute", 1.0))
    assert len(engine.run_vector().ops) == 1
    assert engine.run_vector().ops == []  # consumed, like run()


def test_run_vector_deadlock_preserves_submissions_like_run():
    """A deadlock must not consume eager submissions — same contract as run()."""
    from repro.common.errors import SimulationError

    heap_engine = SimEngine()
    vector_engine = SimEngine()
    for engine in (heap_engine, vector_engine):
        standard_resources(engine)
        blocked = SimOp("blocked", OpKind.GPU_COMPUTE, "gpu.compute", 1.0,
                        deps=(10**9,))
        engine.submit(blocked)
        with pytest.raises(SimulationError):
            engine.run() if engine is heap_engine else engine.run_vector()
        assert engine.pending_ops == 1  # submissions survive the failed run


def test_run_vector_rejects_mixed_admission():
    engine = SimEngine()
    standard_resources(engine)
    engine.submit(SimOp("eager", OpKind.GPU_COMPUTE, "gpu.compute", 1.0))
    batch = OpBatch()
    batch.add_op("batched", OpKind.CPU_UPDATE, "cpu", 1.0)
    with pytest.raises(ConfigurationError):
        engine.run_vector(batch)


def test_run_vector_rejects_unknown_resource():
    engine = SimEngine()
    engine.add_resource("cpu")
    batch = OpBatch()
    batch.add_op("lost", OpKind.GPU_COMPUTE, "not-a-resource", 1.0)
    with pytest.raises(ConfigurationError, match="not-a-resource"):
        engine.run_vector(batch)


# ---------------------------------------------------------------- SweepRunner


def _spy_resolved_scheduler(**params):
    """Module-level worker reporting the scheduler its resolution context yields."""
    return ExecutionPolicy.resolve().scheduler


def test_sweep_runner_rejects_unknown_scheduler():
    with pytest.raises(ConfigurationError, match="warp"):
        SweepRunner(_spy_resolved_scheduler, scheduler="warp")


def test_configure_defaults_rejects_unknown_scheduler():
    try:
        with pytest.raises(ConfigurationError, match="warp"):
            configure_defaults(scheduler="warp")
    finally:
        reset_defaults()


def test_sweep_runner_serializes_scheduler_to_serial_workers(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    runner = SweepRunner(_spy_resolved_scheduler, scheduler="vector")
    result = runner.run(SweepSpec.build({"x": (1, 2)}))
    assert [record.value for record in result.records] == ["vector", "vector"]
    # Explicit serialization, not env export: the environment is never touched.
    assert "REPRO_SIM_SCHEDULER" not in os.environ


def test_sweep_runner_policy_beats_worker_side_env(monkeypatch):
    # The serialized policy wins over the worker's own environment (context >
    # env in the resolution order) — and the environment itself is untouched.
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
    runner = SweepRunner(_spy_resolved_scheduler, scheduler="vector")
    result = runner.run(SweepSpec.build({"x": (1,)}))
    assert result.records[0].value == "vector"
    assert os.environ["REPRO_SIM_SCHEDULER"] == "heap"


def test_sweep_runner_scheduler_from_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    try:
        configure_defaults(scheduler="vector")
        runner = SweepRunner(_spy_resolved_scheduler)
        assert runner.scheduler == "vector"
        result = runner.run(SweepSpec.build({"x": (1,)}))
        assert result.records[0].value == "vector"
    finally:
        reset_defaults()


def test_sweep_runner_default_scheduler_is_auto(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    runner = SweepRunner(_spy_resolved_scheduler)
    assert runner.scheduler == "auto"
    result = runner.run(SweepSpec.build({"x": (1,)}))
    assert result.records[0].value == "auto"


def test_parallel_sweep_runs_on_vector_backend(tmp_path):
    """Pool workers inherit the scheduler via the pickled policy, not env vars."""
    runner = SweepRunner(_spy_resolved_scheduler, jobs=2, scheduler="vector",
                         use_cache=False, cache_dir=tmp_path)
    result = runner.run(SweepSpec.build({"x": (1, 2)}))
    assert [record.value for record in result.records] == ["vector", "vector"]


# ------------------------------------------------------------------------ CLI


@pytest.mark.parametrize("command", [
    ["sweep", "--scheduler", "vector"],
    ["compare", "--scheduler", "vector"],
    ["experiment", "fig7", "--scheduler", "vector"],
    ["sweep", "--scheduler", "heap"],
    ["sweep", "--scheduler", "auto"],
])
def test_cli_accepts_scheduler_flag(command):
    args = build_parser().parse_args(command)
    assert args.scheduler in ("auto", "heap", "vector")


def test_cli_rejects_unknown_scheduler_value(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--scheduler", "warp"])
    assert "invalid choice" in capsys.readouterr().err
