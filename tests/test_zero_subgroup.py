"""Tests for the Subgroup data structure and its numeric operations."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.optim import AdamConfig, AdamRule
from repro.zero.partitioner import SubgroupSpec
from repro.zero.subgroup import Placement, Subgroup


@pytest.fixture
def materialized_subgroup(rng, adam_rule):
    spec = SubgroupSpec(index=0, rank=0, start=0, stop=256)
    subgroup = Subgroup(spec)
    subgroup.materialize(rng.normal(size=256).astype(np.float32), adam_rule)
    return subgroup


def test_placement_defaults_and_static_override():
    spec = SubgroupSpec(index=3, rank=0, start=0, stop=10)
    default = Subgroup(spec)
    assert default.placement == Placement.HOST_PINNED
    assert default.placement.on_host
    static = Subgroup(spec, static_gpu_resident=True)
    assert static.placement == Placement.GPU
    assert not static.placement.on_host


def test_byte_accounting(materialized_subgroup):
    subgroup = materialized_subgroup
    n = subgroup.num_params
    assert subgroup.fp16_param_bytes() == 2 * n
    assert subgroup.fp16_grad_bytes() == 2 * n
    assert subgroup.fp32_grad_bytes() == 4 * n
    # FP32 parameters + Adam momentum and variance.
    assert subgroup.fp32_state_bytes() == 12 * n
    # Staging a subgroup moves FP32 p, m and v in each direction.
    assert subgroup.transfer_bytes_prefetch() == 12 * n
    assert subgroup.transfer_bytes_flush() == 12 * n


def test_materialize_validates_shape(adam_rule, rng):
    subgroup = Subgroup(SubgroupSpec(index=0, rank=0, start=0, stop=10))
    with pytest.raises(ConfigurationError):
        subgroup.materialize(rng.normal(size=5).astype(np.float32), adam_rule)
    assert not subgroup.is_materialized


def test_unmaterialized_operations_raise(adam_rule):
    subgroup = Subgroup(SubgroupSpec(index=0, rank=0, start=0, stop=10))
    with pytest.raises(ConfigurationError):
        subgroup.set_fp16_gradients(np.zeros(10, dtype=np.float16))
    with pytest.raises(ConfigurationError):
        subgroup.flush_gradients_to_host()
    with pytest.raises(ConfigurationError):
        subgroup.apply_update(adam_rule, 1, "cpu")


def test_gradient_flush_is_exact_fp16_upscale(materialized_subgroup, rng):
    subgroup = materialized_subgroup
    grads = rng.normal(size=subgroup.num_params).astype(np.float16)
    subgroup.set_fp16_gradients(grads)
    subgroup.flush_gradients_to_host()
    np.testing.assert_array_equal(subgroup.fp32_grads, grads.astype(np.float32))


def test_gradient_shape_validation(materialized_subgroup):
    with pytest.raises(ConfigurationError):
        materialized_subgroup.set_fp16_gradients(np.zeros(3, dtype=np.float16))


def test_apply_update_is_device_agnostic(rng, adam_rule):
    spec = SubgroupSpec(index=0, rank=0, start=0, stop=128)
    initial = rng.normal(size=128).astype(np.float32)
    grads = rng.normal(size=128).astype(np.float16)

    results = {}
    for device in ("cpu", "gpu"):
        subgroup = Subgroup(spec)
        subgroup.materialize(initial, AdamRule(AdamConfig(learning_rate=1e-3)))
        subgroup.set_fp16_gradients(grads)
        subgroup.flush_gradients_to_host()
        subgroup.apply_update(AdamRule(AdamConfig(learning_rate=1e-3)), 1, device=device)
        results[device] = subgroup.master_snapshot()
        assert subgroup.last_update_device == device
        assert subgroup.last_update_step == 1

    for key in results["cpu"]:
        np.testing.assert_array_equal(results["cpu"][key], results["gpu"][key])


def test_apply_update_keeps_fp16_copy_in_sync(materialized_subgroup, adam_rule, rng):
    subgroup = materialized_subgroup
    subgroup.set_fp16_gradients(rng.normal(size=subgroup.num_params).astype(np.float16))
    subgroup.flush_gradients_to_host()
    subgroup.apply_update(adam_rule, 1, device="cpu")
    np.testing.assert_array_equal(
        subgroup.fp16_params, subgroup.fp32_params.astype(np.float16)
    )


def test_master_snapshot_is_a_copy(materialized_subgroup):
    snapshot = materialized_subgroup.master_snapshot()
    snapshot["params"][:] = 0.0
    assert not np.allclose(materialized_subgroup.fp32_params, 0.0)
