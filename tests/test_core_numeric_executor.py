"""Numeric-equivalence tests: interleaved execution never changes the training result."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.numeric_executor import InterleavedNumericExecutor, SequentialCpuExecutor
from repro.core.scheduler import build_update_plan
from repro.optim import AdamConfig, AdamRule, build_optimizer
from repro.zero.offload import OffloadConfig
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer


def build_optimizer_pair(num_params, dp, subgroup_size, static_fraction=0.0, seed=0, rule_name="adam"):
    rng = np.random.default_rng(seed)
    params = rng.normal(size=num_params).astype(np.float32)
    kwargs = dict(
        data_parallel_degree=dp,
        offload=OffloadConfig(subgroup_size=subgroup_size, static_gpu_fraction=static_fraction),
    )
    baseline = ShardedMixedPrecisionOptimizer(params, build_optimizer(rule_name), **kwargs)
    interleaved = ShardedMixedPrecisionOptimizer(params, build_optimizer(rule_name), **kwargs)
    return baseline, interleaved, rng


def run_steps(optimizer, executor, gradients):
    for grads in gradients:
        optimizer.set_gradients(grads)
        optimizer.step(executor)


def test_interleaved_matches_baseline_bit_for_bit():
    baseline, interleaved, rng = build_optimizer_pair(2000, dp=2, subgroup_size=128)
    gradients = [rng.normal(size=2000).astype(np.float32) for _ in range(4)]
    run_steps(baseline, SequentialCpuExecutor(), gradients)
    run_steps(interleaved, InterleavedNumericExecutor(stride=2), gradients)
    np.testing.assert_array_equal(
        baseline.gathered_fp32_parameters(), interleaved.gathered_fp32_parameters()
    )
    np.testing.assert_array_equal(
        baseline.gathered_fp16_parameters(), interleaved.gathered_fp16_parameters()
    )
    for base_sub, inter_sub in zip(baseline.subgroups(), interleaved.subgroups()):
        for name in base_sub.state:
            np.testing.assert_array_equal(base_sub.state[name], inter_sub.state[name])


@settings(max_examples=20, deadline=None)
@given(
    st.integers(200, 1200),
    st.integers(1, 3),
    st.integers(50, 300),
    st.integers(2, 6),
    st.integers(0, 3),
)
def test_equivalence_for_random_shapes_and_strides(num_params, dp, subgroup_size, stride, steps):
    baseline, interleaved, rng = build_optimizer_pair(num_params, dp, subgroup_size, seed=num_params)
    gradients = [rng.normal(size=num_params).astype(np.float32) for _ in range(steps + 1)]
    run_steps(baseline, SequentialCpuExecutor(), gradients)
    run_steps(interleaved, InterleavedNumericExecutor(stride=stride), gradients)
    np.testing.assert_array_equal(
        baseline.gathered_fp32_parameters(), interleaved.gathered_fp32_parameters()
    )


def test_equivalence_with_static_residents_and_adagrad():
    baseline, interleaved, rng = build_optimizer_pair(
        1500, dp=2, subgroup_size=100, static_fraction=0.25, rule_name="adagrad", seed=7
    )
    gradients = [rng.normal(size=1500).astype(np.float32) for _ in range(3)]
    run_steps(baseline, SequentialCpuExecutor(), gradients)
    run_steps(interleaved, InterleavedNumericExecutor(stride=3), gradients)
    np.testing.assert_array_equal(
        baseline.gathered_fp32_parameters(), interleaved.gathered_fp32_parameters()
    )


def test_gpu_first_flag_does_not_change_result():
    a, b, rng = build_optimizer_pair(900, dp=1, subgroup_size=90, seed=5)
    grads = [rng.normal(size=900).astype(np.float32) for _ in range(2)]
    run_steps(a, InterleavedNumericExecutor(stride=2, gpu_first=True), grads)
    run_steps(b, InterleavedNumericExecutor(stride=2, gpu_first=False), grads)
    np.testing.assert_array_equal(a.gathered_fp32_parameters(), b.gathered_fp32_parameters())


def test_executor_logs_devices_and_counts():
    baseline, interleaved, rng = build_optimizer_pair(1000, dp=1, subgroup_size=100, seed=3)
    executor = InterleavedNumericExecutor(stride=2)
    interleaved.set_gradients(rng.normal(size=1000).astype(np.float32))
    interleaved.step(executor)
    counts = executor.devices_used()
    assert counts["gpu"] == 5
    assert counts["cpu"] == 5
    assert len(executor.log) == 10
    assert all(entry.step == 1 for entry in executor.log)

    sequential = SequentialCpuExecutor()
    baseline.set_gradients(rng.normal(size=1000).astype(np.float32))
    baseline.step(sequential)
    assert set(entry.device for entry in sequential.log) == {"cpu"}


def test_explicit_plan_is_honoured():
    _, interleaved, rng = build_optimizer_pair(600, dp=1, subgroup_size=100, seed=9)
    plan = build_update_plan(6, 3, static_residents={0})
    executor = InterleavedNumericExecutor(plan=plan, stride=3)
    interleaved.set_gradients(rng.normal(size=600).astype(np.float32))
    interleaved.step(executor)
    gpu_updated = {entry.subgroup_index for entry in executor.log if entry.device == "gpu"}
    assert gpu_updated == set(plan.gpu_indices())


def test_every_subgroup_updated_exactly_once_per_step():
    _, interleaved, rng = build_optimizer_pair(1000, dp=2, subgroup_size=70, seed=11)
    executor = InterleavedNumericExecutor(stride=2)
    interleaved.set_gradients(rng.normal(size=1000).astype(np.float32))
    interleaved.step(executor)
    per_rank = {}
    for entry in executor.log:
        per_rank.setdefault(entry.subgroup_index, 0)
        per_rank[entry.subgroup_index] += 1
    # dp=2 ranks share subgroup indices, so each index appears exactly twice overall.
    assert all(count == 2 for count in per_rank.values())
