"""Tests for the device/host memory pools and the memory plan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import GIB
from repro.hardware.memory import DeviceMemoryPool, HostMemoryPool, MemoryPlan


def test_allocate_and_free_tracks_usage():
    pool = DeviceMemoryPool(capacity_bytes=1000)
    pool.allocate("a", 400, tag="params")
    pool.allocate("b", 500, tag="activations")
    assert pool.used_bytes == 900
    assert pool.free_bytes == 100
    assert pool.peak_bytes == 900
    assert "a" in pool
    assert pool.free("a") == 400
    assert pool.used_bytes == 500
    assert pool.peak_bytes == 900


def test_over_allocation_raises_oom_with_details():
    pool = DeviceMemoryPool(capacity_bytes=100)
    pool.allocate("a", 80)
    with pytest.raises(OutOfMemoryError) as excinfo:
        pool.allocate("b", 50)
    assert excinfo.value.requested_bytes == 50
    assert excinfo.value.available_bytes == 20


def test_duplicate_and_missing_names_raise():
    pool = DeviceMemoryPool(capacity_bytes=100)
    pool.allocate("a", 10)
    with pytest.raises(ConfigurationError):
        pool.allocate("a", 10)
    with pytest.raises(ConfigurationError):
        pool.free("missing")


def test_free_all_by_tag():
    pool = DeviceMemoryPool(capacity_bytes=1000)
    pool.allocate("act1", 100, tag="activations")
    pool.allocate("act2", 200, tag="activations")
    pool.allocate("params", 300, tag="params")
    assert pool.free_all(tag="activations") == 300
    assert pool.used_bytes == 300
    assert pool.free_all() == 300
    assert pool.used_bytes == 0


def test_usage_by_tag_and_reset_peak():
    pool = DeviceMemoryPool(capacity_bytes=1000)
    pool.allocate("a", 100, tag="x")
    pool.allocate("b", 200, tag="x")
    assert pool.usage_by_tag()["x"] == 300
    pool.free("b")
    pool.reset_peak()
    assert pool.peak_bytes == 100


def test_host_pool_pinned_limit():
    pool = HostMemoryPool(capacity_bytes=1000, pinned_limit_bytes=300)
    pool.allocate("pinned1", 200, pinned=True)
    assert pool.pinned_bytes == 200
    with pytest.raises(OutOfMemoryError):
        pool.allocate("pinned2", 200, pinned=True)
    pool.allocate("pageable", 500, pinned=False)
    pool.free("pinned1")
    assert pool.pinned_bytes == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 50), min_size=1, max_size=20))
def test_pool_usage_never_negative_and_balanced(sizes):
    pool = DeviceMemoryPool(capacity_bytes=sum(sizes))
    for index, size in enumerate(sizes):
        pool.allocate(f"r{index}", size)
    assert pool.used_bytes == sum(sizes)
    for index in range(len(sizes)):
        pool.free(f"r{index}")
        assert pool.used_bytes >= 0
    assert pool.used_bytes == 0
    assert pool.peak_bytes == sum(sizes)


def test_memory_plan_totals():
    plan = MemoryPlan(
        fp16_parameters=int(10 * GIB),
        fp16_gradients=int(2 * GIB),
        activations=int(20 * GIB),
        gpu_resident_optimizer=int(5 * GIB),
        staged_subgroup=int(1 * GIB),
        workspace=int(3 * GIB),
        host_optimizer_state=int(200 * GIB),
        host_gradient_buffer=int(20 * GIB),
    )
    with_acts = plan.gpu_total(include_activations=True, include_staged_subgroup=True)
    without_acts = plan.gpu_total(include_activations=False, include_staged_subgroup=True)
    assert with_acts - without_acts == int(20 * GIB)
    assert plan.host_total() == int(220 * GIB)
