"""Tests for the baseline strategies and the strategy registry."""

import pytest

from repro.baselines import TwinFlowBaseline, Zero3OffloadBaseline, available_strategies, build_strategy
from repro.common.errors import ConfigurationError
from repro.core.engine import DeepOptimizerStates
from repro.core.numeric_executor import SequentialCpuExecutor


def test_registry_lists_all_three_strategies():
    assert set(available_strategies()) == {"zero3-offload", "twinflow", "deep-optimizer-states"}


def test_build_strategy_aliases():
    assert isinstance(build_strategy("zero3"), Zero3OffloadBaseline)
    assert isinstance(build_strategy("ZeRO3-Offload"), Zero3OffloadBaseline)
    assert isinstance(build_strategy("twinflow", static_gpu_fraction=0.3), TwinFlowBaseline)
    assert isinstance(build_strategy("dos"), DeepOptimizerStates)
    with pytest.raises(ConfigurationError):
        build_strategy("zero-offload-infinity")


def test_zero3_baseline_properties(h100_profile):
    strategy = Zero3OffloadBaseline()
    assert strategy.static_gpu_fraction == 0.0
    assert strategy.flush_blocks_backward()
    assert not strategy.stages_subgroup_on_gpu()
    plan = strategy.build_plan(12, h100_profile)
    assert plan.gpu_indices() == []
    assert isinstance(strategy.numeric_executor(12), SequentialCpuExecutor)
    offload = strategy.offload_config(100_000_000)
    assert offload.static_gpu_fraction == 0.0


def test_twinflow_baseline_static_residency(h100_profile):
    strategy = TwinFlowBaseline(static_gpu_fraction=0.25)
    assert strategy.static_gpu_fraction == 0.25
    plan = strategy.build_plan(8, h100_profile)
    # TwinFlow pins the first subgroups.
    assert plan.gpu_indices() == [0, 1]
    assert plan.dynamic_gpu_indices() == []
    assert strategy.flush_blocks_backward()
    offload = strategy.offload_config(100_000_000)
    assert not offload.static_residents_at_end
    with pytest.raises(ConfigurationError):
        TwinFlowBaseline(static_gpu_fraction=2.0)


def test_build_strategy_passes_parameters_through(h100_profile):
    dos = build_strategy("deep-optimizer-states", static_gpu_fraction=0.2, update_stride=3)
    assert dos.static_gpu_fraction == 0.2
    assert dos.update_stride(h100_profile) == 3
    twinflow = build_strategy("twinflow", static_gpu_fraction=0.4)
    assert twinflow.static_gpu_fraction == 0.4


def test_twinflow_gradient_flush_keeps_resident_gradients_on_gpu(h100_profile):
    from repro.sim.engine import SimEngine, standard_resources
    from repro.sim.ops import OpKind, SimOp

    strategy = TwinFlowBaseline(static_gpu_fraction=0.25)
    plan = strategy.build_plan(4, h100_profile)
    engine = SimEngine()
    standard_resources(engine)
    deps = {}
    for index in range(4):
        producer = SimOp(f"bwd[{index}]", OpKind.GPU_COMPUTE, "gpu.compute", 0.01, subgroup=index)
        engine.submit(producer)
        deps[index] = producer.op_id
    sizes = {i: 10_000_000 for i in range(4)}
    flush = strategy.build_gradient_flush(engine, h100_profile, sizes, deps, plan)
    schedule = engine.run()
    flushed = {item.op.subgroup for item in schedule.filter(kind=OpKind.D2H)}
    assert 0 not in flushed  # the static resident's gradients stay on the GPU
    assert set(flush.grad_ready_ops) == {0, 1, 2, 3}
