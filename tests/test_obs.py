"""The observability subsystem: metrics registry, span tracing, trace export.

Three layers, tested in order:

* **Registry** — counters/gauges/histograms with labels, idempotent
  registration, conflict detection, Prometheus text rendering, and the one
  ``reset()`` that frees metric assertions from test-execution order.
* **Spans** — recording, ambient parenting, explicit cross-process context
  (``current_trace_context`` / ``activate_trace_context`` /
  ``drain_spans`` / ``absorb_spans``), the capacity bound, and the Chrome
  trace-event export with its shared schema validator.
* **Wiring** — the ``trace`` middleware spec, policy-driven enablement,
  schedule export (``repro pipeline --trace-out``), the serve layer's
  Prometheus negotiation and per-request sweep traces, and the headline
  distributed guarantee: a cluster sweep over **two real worker daemons**
  stitches into one trace whose task spans parent under the sweep span.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

import dispatch_workers
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.middleware import build_chain, build_middleware, middleware_metrics
from repro.middleware.base import MiddlewareContext
from repro.middleware.builtin import effective_middleware_specs
from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    schedule_trace,
    schedules_trace,
    validate_trace_events,
    write_schedule_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TraceMiddleware,
    absorb_spans,
    activate_trace_context,
    current_trace_context,
    drain_spans,
    dropped_spans,
    reset_tracing,
    snapshot_spans,
    span,
    take_trace,
    trace_events,
    tracing_enabled,
    write_trace,
)
from repro.runtime import ExecutionPolicy
from repro.serve import ServeClient, ServerThread
from repro.sweep import SweepRunner, SweepSpec
from repro.training.config import TrainingJobConfig
from repro.training.simulation import simulate_job

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs_metrics.reset()
    reset_tracing()
    yield
    obs_metrics.reset()
    reset_tracing()


# ----------------------------------------------------------- metrics registry


def test_counter_increments_per_label_set():
    registry = MetricsRegistry()
    calls = registry.counter("calls_total", "calls", ("seam",))
    calls.labels(seam="cli").inc()
    calls.labels(seam="cli").inc(2)
    calls.labels(seam="engine").inc()
    assert calls.value(seam="cli") == 3
    assert calls.value(seam="engine") == 1
    assert calls.value(seam="serve") == 0  # untouched children read zero


def test_counter_rejects_decrease_and_wrong_labels():
    registry = MetricsRegistry()
    calls = registry.counter("calls_total", "", ("seam",))
    with pytest.raises(ConfigurationError, match="cannot decrease"):
        calls.labels(seam="cli").inc(-1)
    with pytest.raises(ConfigurationError, match="takes labels"):
        calls.labels(client="a")
    with pytest.raises(ConfigurationError, match="use .labels"):
        calls.inc()  # labelled family has no implicit child


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    in_flight = registry.gauge("in_flight", "")
    in_flight.inc()
    in_flight.inc()
    in_flight.dec()
    assert in_flight.value() == 1
    in_flight.set(7.5)
    assert in_flight.value() == 7.5


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    latency = registry.histogram("latency_seconds", "", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        latency.observe(value)
    state = latency.samples()[()]
    assert state["count"] == 4
    assert state["sum"] == pytest.approx(6.05)
    assert state["buckets"] == [1, 3, 4]  # <=0.1, <=1.0, <=10.0 (cumulative)


def test_kind_mismatch_raises_not_corrupts():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "")
    counter = registry.counter("hits_total", "")
    histogram = registry.histogram("sizes", "")
    with pytest.raises(ConfigurationError, match="observe"):
        histogram.inc()
    with pytest.raises(ConfigurationError, match="only gauges"):
        counter.dec()
    with pytest.raises(ConfigurationError, match="only histograms"):
        gauge.observe(1.0)


def test_reregistration_is_idempotent_but_conflicts_raise():
    registry = MetricsRegistry()
    first = registry.counter("calls_total", "calls", ("seam",))
    again = registry.counter("calls_total", "calls", ("seam",))
    assert again is first
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.gauge("calls_total", "", ("seam",))
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.counter("calls_total", "", ("client",))


def test_reset_values_keeps_registrations_alive():
    registry = MetricsRegistry()
    calls = registry.counter("calls_total", "", ("seam",))
    calls.labels(seam="cli").inc(5)
    registry.reset_values()
    assert calls.value(seam="cli") == 0
    calls.labels(seam="cli").inc()  # the old handle still works
    assert calls.value(seam="cli") == 1


def test_obs_reset_clears_registry_and_legacy_seam_dict():
    obs_metrics.SEAM_CALLS.labels(seam="cli").inc()
    chain = build_chain(("timing",))
    chain.run(MiddlewareContext(seam="cli", name="x", payload={}), lambda: None)
    assert middleware_metrics()
    obs_metrics.reset()
    assert obs_metrics.SEAM_CALLS.value(seam="cli") == 0
    assert middleware_metrics() == {}


# --------------------------------------------------------- prometheus rendering


def test_prometheus_rendering_headers_values_and_escaping():
    registry = MetricsRegistry()
    calls = registry.counter("calls_total", 'calls per "seam"\nand such', ("seam",))
    calls.labels(seam='a"b\\c\nd').inc(2)
    registry.gauge("depth", "current depth").set(1.5)
    text = registry.render_prometheus()
    assert '# HELP calls_total calls per "seam"\\nand such' in text
    assert "# TYPE calls_total counter" in text
    assert 'calls_total{seam="a\\"b\\\\c\\nd"} 2' in text
    assert "# TYPE depth gauge" in text
    assert "depth 1.5" in text
    assert text.endswith("\n")


def test_prometheus_histogram_series_are_conventional():
    registry = MetricsRegistry()
    latency = registry.histogram("latency_seconds", "", ("seam",),
                                 buckets=(0.1, 1.0))
    latency.labels(seam="cli").observe(0.5)
    latency.labels(seam="cli").observe(2.0)
    lines = registry.render_prometheus().splitlines()
    assert 'latency_seconds_bucket{seam="cli",le="0.1"} 0' in lines
    assert 'latency_seconds_bucket{seam="cli",le="1"} 1' in lines
    assert 'latency_seconds_bucket{seam="cli",le="+Inf"} 2' in lines
    assert 'latency_seconds_sum{seam="cli"} 2.5' in lines
    assert 'latency_seconds_count{seam="cli"} 2' in lines


def test_prometheus_renders_declared_but_empty_families():
    registry = MetricsRegistry()
    registry.counter("calls_total", "calls")
    text = registry.render_prometheus()
    assert "# TYPE calls_total counter" in text  # discoverable before samples
    assert "\ncalls_total " not in text


# -------------------------------------------------------------- span recording


def test_spans_nest_ambiently_and_share_one_trace():
    with span("outer", seam="cli") as outer:
        with span("inner", seam="engine") as inner:
            assert inner["trace_id"] == outer["trace_id"]
            assert inner["parent_id"] == outer["span_id"]
    records = snapshot_spans()
    assert [r["name"] for r in records] == ["inner", "outer"]  # completion order
    assert records[1]["parent_id"] is None
    assert records[0]["duration_s"] >= 0.0
    assert obs_metrics.TRACE_SPANS.value(seam="cli") == 1
    assert obs_metrics.TRACE_SPANS.value(seam="engine") == 1


def test_span_records_errors_and_reraises():
    with pytest.raises(ValueError):
        with span("doomed"):
            raise ValueError("no")
    (record,) = snapshot_spans()
    assert record["attrs"]["error"] == "ValueError"


def test_trace_context_round_trips_explicitly():
    assert current_trace_context() is None
    with span("parent") as parent:
        shipped = current_trace_context()
        assert shipped == {"trace_id": parent["trace_id"],
                           "span_id": parent["span_id"]}
    # The other side of a process boundary: re-activate, open a child.
    with activate_trace_context(shipped):
        with span("remote-child") as child:
            assert child["trace_id"] == shipped["trace_id"]
            assert child["parent_id"] == shipped["span_id"]
    assert current_trace_context() is None  # activation is scoped


@pytest.mark.parametrize("context", [None, {}, {"trace_id": "x"}, "junk", 42])
def test_activate_tolerates_missing_or_malformed_contexts(context):
    with activate_trace_context(context):
        assert current_trace_context() is None


def test_drain_take_and_absorb_move_spans_between_collectors():
    with span("a") as a:
        pass
    with span("b"):
        pass
    assert take_trace(a["trace_id"]) == [dict(r) for r in [a]]
    remaining = snapshot_spans()
    assert [r["name"] for r in remaining] == ["b"]  # other traces untouched
    shipped = drain_spans()
    assert snapshot_spans() == []
    absorb_spans(shipped + [None, "junk"])  # tolerant of foreign shapes
    assert [r["name"] for r in snapshot_spans()] == ["b"]


def test_collector_is_bounded(monkeypatch):
    monkeypatch.setattr("repro.obs.trace.MAX_SPANS", 2)
    for number in range(4):
        with span(f"s{number}"):
            pass
    assert len(snapshot_spans()) == 2
    assert dropped_spans() == 2
    reset_tracing()
    assert dropped_spans() == 0


# ----------------------------------------------------------------- span export


def test_trace_events_export_is_schema_valid_and_parented():
    with span("outer", seam="dispatch", attrs={"index": 3}, worker="w-1"):
        with span("inner", seam="engine"):
            pass
    payload = trace_events()
    assert validate_trace_events(payload) == 2
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    by_name = {e["name"]: e for e in complete}
    assert by_name["inner"]["args"]["parent_id"] == \
        by_name["outer"]["args"]["span_id"]
    assert by_name["outer"]["args"]["index"] == 3  # payload attrs ride along
    names = [e for e in payload["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names and names[0]["args"]["name"] == "w-1"


def test_write_trace_emits_loadable_json(tmp_path):
    with span("only"):
        pass
    path = write_trace(tmp_path / "deep" / "trace.json")
    payload = json.loads(path.read_text())
    assert validate_trace_events(payload) == 1


@pytest.mark.parametrize("payload, offence", [
    ([], "JSON object"),
    ({}, "traceEvents list"),
    ({"traceEvents": [{"ph": "Z"}]}, "unknown phase"),
    ({"traceEvents": [{"ph": "X", "name": "x", "ts": 0, "dur": 1}]}, "pid"),
    ({"traceEvents": [{"ph": "X", "name": "", "ts": 0, "dur": 0,
                       "pid": 1, "tid": 1}]}, "no name"),
    ({"traceEvents": [{"ph": "X", "name": "x", "ts": -1, "dur": 0,
                       "pid": 1, "tid": 1}]}, "invalid 'ts'"),
])
def test_validator_rejects_malformed_documents(payload, offence):
    with pytest.raises(ConfigurationError, match=offence):
        validate_trace_events(payload)


# -------------------------------------------------- trace middleware + policy


def test_trace_spec_builds_and_records_one_span_per_interception():
    chain = build_chain(("trace",))
    assert isinstance(chain.middlewares[0], TraceMiddleware)
    result = chain.run(
        MiddlewareContext(seam="dispatch", name="task",
                          payload={"worker_id": "w-9", "index": 1}),
        lambda: 41)
    assert result == 41
    (record,) = snapshot_spans()
    assert (record["name"], record["seam"], record["worker"]) == \
        ("task", "dispatch", "w-9")
    assert record["attrs"]["index"] == 1


def test_trace_spec_takes_no_arguments():
    with pytest.raises(ConfigurationError, match="takes no arguments"):
        build_middleware("trace:fast=1")


def test_policy_trace_flag_appends_the_trace_spec_once():
    assert effective_middleware_specs(None) == ()
    assert effective_middleware_specs(ExecutionPolicy()) == ()
    assert effective_middleware_specs(ExecutionPolicy(trace=True)) == ("trace",)
    assert effective_middleware_specs(
        ExecutionPolicy(trace=True, middleware=("timing",))) == ("timing", "trace")
    assert effective_middleware_specs(  # already present: no duplicate
        ExecutionPolicy(trace=True, middleware=("trace", "timing"))) == \
        ("trace", "timing")
    assert tracing_enabled(ExecutionPolicy(trace=True))
    assert tracing_enabled(ExecutionPolicy(middleware=("trace",)))
    assert not tracing_enabled(ExecutionPolicy(middleware=("timing",)))
    assert not tracing_enabled(None)


# ------------------------------------------------------------ schedule export


@pytest.fixture(scope="module")
def training_schedule():
    job = TrainingJobConfig(model="7B", strategy="deep-optimizer-states",
                            check_memory=False).resolve()
    return simulate_job(job, 1, policy=ExecutionPolicy()).schedule


def test_schedule_exports_one_track_per_resource(training_schedule):
    payload = schedule_trace(training_schedule, label="7B")
    assert validate_trace_events(payload) == len(training_schedule.ops)
    tracks = {e["args"]["name"] for e in payload["traceEvents"]
              if e["ph"] == "M" and e["name"] == "thread_name"}
    assert tracks == set(training_schedule.resources)
    slice_tids = {e["tid"] for e in payload["traceEvents"] if e["ph"] == "X"}
    declared_tids = {e["tid"] for e in payload["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "thread_name"}
    assert slice_tids <= declared_tids  # every slice lands on a named track


def test_multi_schedule_export_keeps_groups_apart(training_schedule):
    payload = schedules_trace({"one": training_schedule,
                               "two": training_schedule})
    names = {e["pid"]: e["args"]["name"] for e in payload["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {1: "one", 2: "two"}
    assert validate_trace_events(payload) == 2 * len(training_schedule.ops)


def test_export_rejects_things_that_are_not_schedules():
    with pytest.raises(ConfigurationError, match="no ops attribute"):
        schedule_trace(object())


def test_write_schedule_trace_round_trips(tmp_path, training_schedule):
    path = write_schedule_trace(tmp_path / "sched.json", training_schedule,
                                label="7B")
    assert validate_trace_events(json.loads(path.read_text())) > 0


# ------------------------------------------------------------- CLI integration


def test_pipeline_trace_out_exports_stage_and_link_tracks(tmp_path, capsys):
    path = tmp_path / "pipeline.json"
    assert main(["pipeline", "--schedule", "zb", "--stages", "2",
                 "--microbatches", "2", "--json", "--trace-out", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert validate_trace_events(payload) > 0
    tracks = {e["args"]["name"] for e in payload["traceEvents"]
              if e["ph"] == "M" and e["name"] == "thread_name"}
    assert any("stage0" in name for name in tracks)
    assert any("stage1" in name for name in tracks)
    assert any("link" in name for name in tracks)
    assert "trace written" in capsys.readouterr().err


def test_compare_trace_out_exports_one_group_per_strategy(tmp_path, capsys):
    path = tmp_path / "compare.json"
    assert main(["compare", "--model", "7B", "--iterations", "1",
                 "--strategies", "deep-optimizer-states", "zero3-offload",
                 "--trace-out", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert validate_trace_events(payload) > 0
    groups = {e["args"]["name"] for e in payload["traceEvents"]
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert "deep-optimizer-states" in groups


def test_cli_trace_out_writes_one_stitched_span_trace(tmp_path, capsys,
                                                      monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_MIDDLEWARE", raising=False)
    path = tmp_path / "spans.json"
    assert main(["--trace-out", str(path), "sweep", "--worker", "training",
                 "--models", "7B", "--strategies", "deep-optimizer-states",
                 "--iterations", "1", "--no-cache"]) == 0
    payload = json.loads(path.read_text())
    assert validate_trace_events(payload) >= 3  # cli, sweep, task spans at least
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    trace_ids = {e["args"]["trace_id"] for e in complete}
    assert len(trace_ids) == 1  # one command, one trace
    span_ids = {e["args"]["span_id"] for e in complete}
    roots = [e for e in complete if e["args"]["parent_id"] is None]
    assert len(roots) == 1 and roots[0]["cat"] == "cli"
    for event in complete:
        parent = event["args"]["parent_id"]
        assert parent is None or parent in span_ids  # no orphans
    assert "trace written" in capsys.readouterr().err


# -------------------------------------------------------------- serve surfaces


def _scrape(address, accept):
    host, port = address
    request = urllib.request.Request(f"http://{host}:{port}/metrics",
                                     headers={"Accept": accept})
    with urllib.request.urlopen(request) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


def test_serve_metrics_negotiates_prometheus_text():
    with ServerThread() as running:
        status, content_type, body = _scrape(running.address, "text/plain")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert "# TYPE repro_seam_calls_total counter" in text
        assert "# TYPE repro_trace_spans_total counter" in text
        # The JSON blob is still the default for everything else.
        status, content_type, body = _scrape(running.address, "application/json")
        assert status == 200
        payload = json.loads(body)
        assert "coalescing" in payload


def test_serve_sweep_trace_flag_attaches_export_without_changing_result():
    axes = {"x": [1, 2]}
    with ServerThread(policy=ExecutionPolicy.resolve(use_cache=False)) as running:
        with ServeClient(running.address) as client:
            plain = client.request("sweep", {
                "worker": "dispatch_workers:echo_params", "axes": axes})
            traced = client.request("sweep", {
                "worker": "dispatch_workers:echo_params", "axes": axes,
                "trace": True})
    export = traced.pop("trace")
    assert traced == plain  # byte-identical result, trace rides alongside
    assert validate_trace_events(export) >= 1
    complete = [e for e in export["traceEvents"] if e["ph"] == "X"]
    assert any(e["cat"] == "serve" and e["name"] == "sweep" for e in complete)
    assert len({e["args"]["trace_id"] for e in complete}) == 1


# ------------------------------------------- distributed stitching (cluster)


def test_cluster_sweep_with_two_daemons_stitches_one_trace(tmp_path):
    """The headline guarantee: two worker processes, one parented trace."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_MIDDLEWARE", None)
    env.pop("REPRO_TRACE", None)
    daemons = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{port}", "--id", f"obs-{number}",
             "--retry-for", "30"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
        for number in (1, 2)]
    try:
        spec = SweepSpec.build({"x": (1, 2, 3), "y": (10, 20)})
        options = {"bind": f"127.0.0.1:{port}", "lease_timeout": 5.0,
                   "worker_wait_timeout": 30.0}
        traced = SweepRunner(dispatch_workers.echo_params, executor="cluster",
                             workers=2, executor_options=options,
                             use_cache=False, middleware=("trace",)).run(spec)
        bare = SweepRunner(dispatch_workers.echo_params, executor="serial",
                           use_cache=False).run(spec)
    finally:
        for daemon in daemons:
            if daemon.poll() is None:
                daemon.terminate()
        for daemon in daemons:
            daemon.wait(timeout=10)
    # Identity first: tracing never reaches the values.
    assert json.dumps(traced.to_dict(), sort_keys=True) == \
        json.dumps(bare.to_dict(), sort_keys=True)
    records = snapshot_spans()
    sweep_spans = [r for r in records if r["name"] == "sweep"]
    assert len(sweep_spans) == 1
    task_spans = [r for r in records
                  if r["seam"] == "dispatch" and r["name"] != "sweep"]
    assert len(task_spans) == spec.num_scenarios
    # One trace: every remote span joined the coordinator's trace id...
    assert {r["trace_id"] for r in records} == {sweep_spans[0]["trace_id"]}
    # ...and parents directly under the sweep span, not floating free.
    assert {r["parent_id"] for r in task_spans} == {sweep_spans[0]["span_id"]}
    # Spans really came from the daemons (other processes, both workers).
    assert all(r["pid"] != os.getpid() for r in task_spans)
    assert {r["worker"] for r in task_spans} == {"obs-1", "obs-2"}
    # And the stitched trace exports schema-valid.
    assert validate_trace_events(trace_events(records)) == len(records)
