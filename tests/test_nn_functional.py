"""Tests for the NumPy neural-network primitives (forward and gradients)."""

import numpy as np
import pytest

from repro.model.nn import functional as F


def numerical_gradient(fn, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn()
        flat[index] = original - eps
        minus = fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def test_gelu_matches_reference_points():
    x = np.array([-2.0, -1.0, 0.0, 1.0, 2.0], dtype=np.float32)
    y = F.gelu(x)
    assert y[2] == pytest.approx(0.0, abs=1e-7)
    assert y[3] == pytest.approx(0.8412, abs=1e-3)
    assert y[0] == pytest.approx(-0.0454, abs=1e-3)


def test_gelu_backward_matches_finite_differences(rng):
    x = rng.normal(size=(4, 5)).astype(np.float32)
    grad_out = np.ones_like(x)
    analytic = F.gelu_backward(x, grad_out)
    numeric = numerical_gradient(lambda: float(F.gelu(x).sum()), x)
    np.testing.assert_allclose(analytic, numeric, atol=1e-2)


def test_softmax_rows_sum_to_one_and_is_stable(rng):
    x = rng.normal(size=(3, 7)).astype(np.float32) * 50
    probs = F.softmax(x)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-5)
    assert np.isfinite(probs).all()
    shifted = F.softmax(x + 1000.0)
    np.testing.assert_allclose(probs, shifted, atol=1e-5)


def test_log_softmax_consistent_with_softmax(rng):
    x = rng.normal(size=(2, 9)).astype(np.float32)
    np.testing.assert_allclose(np.exp(F.log_softmax(x)), F.softmax(x), atol=1e-6)


def test_layer_norm_output_statistics(rng):
    x = rng.normal(size=(4, 16)).astype(np.float32) * 3 + 2
    gamma = np.ones(16, dtype=np.float32)
    beta = np.zeros(16, dtype=np.float32)
    out, _ = F.layer_norm(x, gamma, beta)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_layer_norm_backward_matches_finite_differences(rng):
    x = rng.normal(size=(3, 6)).astype(np.float64)
    gamma = rng.normal(size=6).astype(np.float64)
    beta = rng.normal(size=6).astype(np.float64)

    def loss():
        out, _ = F.layer_norm(x.astype(np.float32), gamma.astype(np.float32), beta.astype(np.float32))
        return float((out**2).sum())

    out, cache = F.layer_norm(x.astype(np.float32), gamma.astype(np.float32), beta.astype(np.float32))
    dx, dgamma, dbeta = F.layer_norm_backward(2 * out, cache)
    # The forward pass runs in float32, so central differences carry ~1e-2 noise.
    np.testing.assert_allclose(dx, numerical_gradient(loss, x, eps=1e-3), atol=5e-2)
    np.testing.assert_allclose(dgamma, numerical_gradient(loss, gamma, eps=1e-3), atol=5e-2)
    np.testing.assert_allclose(dbeta, numerical_gradient(loss, beta, eps=1e-3), atol=5e-2)


def test_cross_entropy_uniform_logits(rng):
    logits = np.zeros((2, 3, 5), dtype=np.float32)
    targets = rng.integers(0, 5, size=(2, 3))
    loss, probs = F.cross_entropy(logits, targets)
    assert loss == pytest.approx(np.log(5), abs=1e-5)
    np.testing.assert_allclose(probs, 0.2, atol=1e-6)


def test_cross_entropy_backward_sums_to_zero(rng):
    logits = rng.normal(size=(2, 4, 6)).astype(np.float32)
    targets = rng.integers(0, 6, size=(2, 4))
    _, probs = F.cross_entropy(logits, targets)
    grad = F.cross_entropy_backward(probs, targets)
    # Each token's gradient sums to zero (softmax property) and scales by 1/num_tokens.
    np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-6)
    assert grad.max() <= 1.0 / (2 * 4) + 1e-6


def test_cross_entropy_backward_matches_finite_differences(rng):
    logits = rng.normal(size=(1, 3, 4)).astype(np.float64)
    targets = rng.integers(0, 4, size=(1, 3))

    def loss():
        value, _ = F.cross_entropy(logits.astype(np.float32), targets)
        return value

    _, probs = F.cross_entropy(logits.astype(np.float32), targets)
    analytic = F.cross_entropy_backward(probs, targets)
    numeric = numerical_gradient(loss, logits)
    np.testing.assert_allclose(analytic, numeric, atol=1e-3)
