"""Tests for Equation 1 and the analytic update-phase estimates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.performance_model import (
    PerformanceModel,
    cpu_to_gpu_update_ratio,
    optimal_update_stride,
)
from repro.hardware.throughput import ThroughputProfile


def make_profile(pcie=13.75e9, gpu=25e9, cpu=2e9, downscale=10e9) -> ThroughputProfile:
    return ThroughputProfile(
        pcie_pps=pcie, gpu_update_pps=gpu, cpu_update_pps=cpu, cpu_downscale_pps=downscale
    )


def test_paper_v100_numbers_give_ratio_2_3(paper_v100_profile):
    """Section 5.4: B=3, Ug=35, Uc=2, Dc=8.7 billion params/s -> k ~= 2.29 -> stride 2."""
    ratio = cpu_to_gpu_update_ratio(paper_v100_profile)
    assert ratio == pytest.approx(2.29, abs=0.05)
    assert optimal_update_stride(paper_v100_profile) == 2


def test_h100_testbed_selects_stride_2(h100_profile):
    """The paper states the optimal dynamic update stride is 2 on the H100 testbed."""
    assert optimal_update_stride(h100_profile) == 2


def test_equation_1_closed_form():
    profile = make_profile(pcie=10e9, gpu=50e9, cpu=2e9, downscale=10e9)
    expected = (3 / 10e9 + 1 / 50e9) / (1 / 2e9 + 1 / 10e9 - 1 / 20e9)
    assert cpu_to_gpu_update_ratio(profile) == pytest.approx(expected)


def test_ratio_monotonicity_faster_cpu_means_more_cpu_work():
    slow_cpu = cpu_to_gpu_update_ratio(make_profile(cpu=1e9))
    fast_cpu = cpu_to_gpu_update_ratio(make_profile(cpu=4e9))
    assert fast_cpu > slow_cpu


def test_ratio_monotonicity_faster_pcie_means_more_gpu_work():
    slow_pcie = cpu_to_gpu_update_ratio(make_profile(pcie=5e9))
    fast_pcie = cpu_to_gpu_update_ratio(make_profile(pcie=40e9))
    assert fast_pcie < slow_pcie


def test_ratio_monotonicity_faster_gpu_means_more_gpu_work():
    slow_gpu = cpu_to_gpu_update_ratio(make_profile(gpu=10e9))
    fast_gpu = cpu_to_gpu_update_ratio(make_profile(gpu=100e9))
    assert fast_gpu < slow_gpu


@settings(max_examples=60, deadline=None)
@given(
    st.floats(1e9, 60e9),
    st.floats(5e9, 200e9),
    st.floats(0.5e9, 10e9),
    st.floats(2e9, 40e9),
)
def test_ratio_independent_of_subgroup_size(pcie, gpu, cpu, downscale):
    """Equation 1 does not depend on S, so the stride is subgroup-size independent."""
    profile = make_profile(pcie, gpu, cpu, downscale)
    try:
        ratio = cpu_to_gpu_update_ratio(profile)
    except ConfigurationError:
        return  # degenerate corner where the denominator is non-positive
    assert ratio > 0
    model = PerformanceModel(profile)
    small = model.estimate_interleaved(20, 1_000_000, stride=model.stride)
    large = model.estimate_interleaved(20, 100_000_000, stride=model.stride)
    # The per-parameter update rate is size-independent.
    assert small.total_seconds * 100 == pytest.approx(large.total_seconds, rel=0.05)


def test_degenerate_denominator_raises():
    # A CPU so fast that offloading to it never becomes the bottleneck.
    with pytest.raises(ConfigurationError):
        cpu_to_gpu_update_ratio(make_profile(pcie=1e9, cpu=1e12, downscale=1e12))


def test_stride_clamping_bounds(h100_profile):
    assert optimal_update_stride(h100_profile, min_stride=3) >= 3
    assert optimal_update_stride(h100_profile, max_stride=2) == 2
    with pytest.raises(ConfigurationError):
        optimal_update_stride(h100_profile, min_stride=0)
    with pytest.raises(ConfigurationError):
        optimal_update_stride(h100_profile, min_stride=3, max_stride=2)


def test_interleaved_estimate_beats_blocking_estimate(h100_profile):
    model = PerformanceModel(h100_profile)
    blocking = model.estimate_blocking_offload(50, 100_000_000)
    interleaved = model.estimate_interleaved(50, 100_000_000)
    assert interleaved.total_seconds < blocking.total_seconds
    assert interleaved.gpu_scheduled_subgroups > 0
    assert blocking.gpu_scheduled_subgroups == 0


def test_static_residents_accelerate_blocking_estimate(h100_profile):
    model = PerformanceModel(h100_profile)
    none = model.estimate_blocking_offload(50, 100_000_000, static_gpu_resident=0)
    some = model.estimate_blocking_offload(50, 100_000_000, static_gpu_resident=10)
    assert some.total_seconds < none.total_seconds
    assert some.gpu_scheduled_subgroups == 10


def test_best_stride_on_h100_is_2(h100_profile):
    model = PerformanceModel(h100_profile)
    assert model.best_stride_by_estimate(50, 100_000_000) == 2
    assert model.gpu_fraction() == pytest.approx(0.5)


def test_estimate_validation(h100_profile):
    model = PerformanceModel(h100_profile)
    with pytest.raises(ConfigurationError):
        model.estimate_interleaved(0, 100)
    with pytest.raises(ConfigurationError):
        model.estimate_interleaved(10, 0)
    with pytest.raises(ConfigurationError):
        model.estimate_interleaved(10, 100, static_gpu_resident=11)
    with pytest.raises(ConfigurationError):
        model.estimate_interleaved(10, 100, stride=0)
