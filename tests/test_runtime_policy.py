"""ExecutionPolicy: the four-level resolution order and its consumers.

The contract under test (``docs/runtime.md``): every execution knob resolves
through **explicit argument > active ``repro.configure`` context > ``REPRO_*``
environment > default**, in exactly one place
(:meth:`repro.runtime.ExecutionPolicy.resolve`), for every field.  On top of
that order sit the consumers: ``simulate_job`` (including ``scheduler="auto"``
threshold selection and the op-batch fallback record), ``Trainer``,
``SweepRunner`` (explicit worker-side serialization) and the CLI (global
flags, the ``repro config`` subcommand).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.runtime import (
    DEFAULT_AUTO_VECTOR_THRESHOLD,
    POLICY_FIELDS,
    ExecutionPolicy,
    configure,
    policy_context,
)
from repro.sim.engine import VectorSchedule
from repro.sim.ops import reset_op_counter
from repro.sweep import SweepRunner, SweepSpec
from repro.training.config import TrainingJobConfig
from repro.training.simulation import simulate_job
from repro.training.trainer import Trainer

ENV_VARS = [spec.env_var for spec in POLICY_FIELDS.values()]


@pytest.fixture(autouse=True)
def _clean_policy_env(monkeypatch):
    """Policy env vars from the developer's shell must not steer these tests."""
    for env_var in ENV_VARS:
        monkeypatch.delenv(env_var, raising=False)


@pytest.fixture(scope="module")
def job():
    return TrainingJobConfig(model="7B", strategy="deep-optimizer-states",
                             check_memory=False).resolve()


# ------------------------------------------------------------------ precedence

# (field, env text, value the env text parses to, context value, arg value).
# Context values deliberately differ from the env values (and arg from context)
# so each assertion can only pass if the documented level won.
FIELD_CASES = [
    ("op_backend", "objects", "objects", "batch", "objects"),
    ("scheduler", "vector", "vector", "heap", "vector"),
    ("auto_vector_threshold", "123", 123, 456, 789),
    ("jobs", "3", 3, 2, 4),
    ("executor", "cluster", "cluster", "pool", "serial"),
    ("workers", "3", 3, 2, 4),
    ("use_cache", "1", True, False, True),
    ("cache_dir", "/tmp/env-cache", Path("/tmp/env-cache"),
     Path("/tmp/ctx-cache"), Path("/tmp/arg-cache")),
    ("middleware", "timing,logging", ("timing", "logging"),
     ("logging",), ("noop",)),
    ("scenario_family", "pipeline", "pipeline", "offload", "pipeline"),
    ("pipeline_schedule", "zb", "zb", "gpipe", "zb"),
    ("trace", "1", True, False, True),
    ("trace_out", "/tmp/env-trace.json", Path("/tmp/env-trace.json"),
     Path("/tmp/ctx-trace.json"), Path("/tmp/arg-trace.json")),
]

DEFAULTS = {
    "op_backend": "batch",
    "scheduler": "auto",
    "auto_vector_threshold": DEFAULT_AUTO_VECTOR_THRESHOLD,
    "jobs": 1,
    "executor": "auto",
    "workers": 1,
    "use_cache": False,
    "cache_dir": Path.home() / ".cache" / "repro" / "sweeps",
    "middleware": (),
    "scenario_family": "offload",
    "pipeline_schedule": "1f1b",
    "trace": False,
    "trace_out": None,
}


@pytest.mark.parametrize("name,env_text,env_value,ctx_value,arg_value", FIELD_CASES)
def test_field_resolves_arg_over_context_over_env_over_default(
    monkeypatch, name, env_text, env_value, ctx_value, arg_value
):
    spec = POLICY_FIELDS[name]

    resolved = ExecutionPolicy.resolve()
    assert getattr(resolved, name) == DEFAULTS[name]
    assert resolved.sources[name] == "default"

    monkeypatch.setenv(spec.env_var, env_text)
    resolved = ExecutionPolicy.resolve()
    assert getattr(resolved, name) == env_value
    assert resolved.sources[name] == "env"

    with configure(**{name: ctx_value}):
        resolved = ExecutionPolicy.resolve()
        assert getattr(resolved, name) == ctx_value
        assert resolved.sources[name] == "context"

        resolved = ExecutionPolicy.resolve(**{name: arg_value})
        assert getattr(resolved, name) == arg_value
        assert resolved.sources[name] == "arg"


def test_contexts_nest_with_inner_wins_and_fields_merge():
    with configure(scheduler="vector", jobs=3):
        with configure(scheduler="heap"):
            inner = ExecutionPolicy.resolve()
            assert inner.scheduler == "heap"
            assert inner.jobs == 3  # outer field shows through
        outer = ExecutionPolicy.resolve()
        assert outer.scheduler == "vector"
    assert ExecutionPolicy.resolve().scheduler == "auto"


def test_context_value_beats_env_even_when_equal_to_default(monkeypatch):
    # A context explicitly pinning the default value must still outvote env.
    monkeypatch.setenv("REPRO_SIM_OP_BACKEND", "objects")
    with configure(op_backend="batch"):
        resolved = ExecutionPolicy.resolve()
    assert resolved.op_backend == "batch"
    assert resolved.sources["op_backend"] == "context"


def test_explicit_argument_shields_a_broken_env_value(monkeypatch):
    # Only the winning level is validated: garbage below it cannot raise.
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "quantum")
    assert ExecutionPolicy.resolve(scheduler="heap").scheduler == "heap"
    with pytest.raises(ConfigurationError, match="quantum"):
        ExecutionPolicy.resolve()


# ------------------------------------------------------------------ validation


def test_falsey_env_booleans_parse(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_USE_CACHE", "off")
    assert ExecutionPolicy.resolve().use_cache is False
    monkeypatch.setenv("REPRO_SWEEP_USE_CACHE", "true")
    assert ExecutionPolicy.resolve().use_cache is True


@pytest.mark.parametrize("kwargs", [
    {"op_backend": "rows"},
    {"scheduler": "warp"},
    {"auto_vector_threshold": -1},
    {"auto_vector_threshold": "lots"},
    {"jobs": 0},
    {"jobs": 2.5},
    {"executor": "mainframe"},
    {"workers": 0},
    {"workers": True},
    {"use_cache": "yes"},
    {"cache_dir": 42},
    {"middleware": ("warp",)},
    {"middleware": 42},
    {"scenario_family": "tensor"},
    {"pipeline_schedule": "interleaved-1f1b"},
    {"trace": "yes"},
    {"trace_out": 42},
])
def test_bad_values_raise_at_construction_and_resolution(kwargs):
    with pytest.raises(ConfigurationError):
        ExecutionPolicy(**kwargs)
    with pytest.raises(ConfigurationError):
        ExecutionPolicy.resolve(**kwargs)
    with pytest.raises(ConfigurationError):
        configure(**kwargs)


@pytest.mark.parametrize("env_var,text", [
    ("REPRO_SWEEP_JOBS", "many"),
    ("REPRO_SWEEP_USE_CACHE", "maybe"),
    ("REPRO_AUTO_VECTOR_THRESHOLD", "1e6"),
    ("REPRO_MIDDLEWARE", "warp"),
    ("REPRO_MIDDLEWARE", "retry:attempts=lots"),
    ("REPRO_SCENARIO_FAMILY", "tensor"),
    ("REPRO_PIPELINE_SCHEDULE", "interleaved-1f1b"),
    ("REPRO_TRACE", "maybe"),
])
def test_unparseable_env_values_raise(monkeypatch, env_var, text):
    monkeypatch.setenv(env_var, text)
    with pytest.raises(ConfigurationError):
        ExecutionPolicy.resolve()


def test_pipeline_schedule_aliases_resolve_to_canonical_names(monkeypatch):
    # The validator folds registry aliases ("zero-bubble", "pipedream-flush")
    # to their canonical schedule names, at every resolution level.
    assert ExecutionPolicy.resolve(pipeline_schedule="zero-bubble").pipeline_schedule == "zb"
    monkeypatch.setenv("REPRO_PIPELINE_SCHEDULE", "pipedream-flush")
    assert ExecutionPolicy.resolve().pipeline_schedule == "1f1b"


def test_unknown_fields_are_rejected_everywhere():
    with pytest.raises(ConfigurationError, match="warp_speed"):
        configure(warp_speed=9)
    with pytest.raises(ConfigurationError):
        ExecutionPolicy.resolve(warp_speed=9)


def test_policies_compare_by_value_not_by_source(monkeypatch):
    assert ExecutionPolicy.resolve() == ExecutionPolicy()
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "vector")
    assert ExecutionPolicy.resolve() == ExecutionPolicy(scheduler="vector")


def test_with_overrides_replaces_fields_as_arg_sources():
    base = ExecutionPolicy.resolve()
    derived = base.with_overrides(scheduler="vector")
    assert derived.scheduler == "vector"
    assert derived.sources["scheduler"] == "arg"
    assert derived.jobs == base.jobs
    with pytest.raises(ConfigurationError):
        base.with_overrides(scheduler="warp")


def test_describe_is_json_ready():
    described = ExecutionPolicy.resolve().describe()
    assert set(described) == set(POLICY_FIELDS)
    payload = json.loads(json.dumps(described))
    assert payload["scheduler"] == {"value": "auto", "source": "default"}
    assert isinstance(payload["cache_dir"]["value"], str)


def test_directly_constructed_policy_infers_honest_sources():
    described = ExecutionPolicy(scheduler="vector").describe()
    assert described["scheduler"]["source"] == "arg"
    assert described["jobs"]["source"] == "default"  # never passed, not an arg


def test_env_errors_name_the_offending_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "garbage")
    with pytest.raises(ConfigurationError, match=r"REPRO_SWEEP_JOBS"):
        ExecutionPolicy.resolve()


def test_resolution_report_rejects_unknown_fields():
    from repro.runtime import resolution_report

    with pytest.raises(ConfigurationError, match="schedular"):
        resolution_report(schedular="vector")


# ------------------------------------------------------------ middleware field


def test_middleware_resolves_comma_strings_to_canonical_tuples():
    resolved = ExecutionPolicy.resolve(middleware="timing, logging")
    assert resolved.middleware == ("timing", "logging")
    assert resolved.sources["middleware"] == "arg"
    # Sequences canonicalize too, argument forms preserved verbatim.
    assert ExecutionPolicy.resolve(
        middleware=["retry:attempts=3:backoff=0.1"]
    ).middleware == ("retry:attempts=3:backoff=0.1",)


def test_broken_middleware_env_names_the_variable_and_the_spec(monkeypatch):
    monkeypatch.setenv("REPRO_MIDDLEWARE", "warp")
    with pytest.raises(ConfigurationError, match=r"REPRO_MIDDLEWARE.*warp"):
        ExecutionPolicy.resolve()
    # An explicit argument shields the broken env, like every other field.
    assert ExecutionPolicy.resolve(middleware="timing").middleware == ("timing",)


def test_timing_middleware_metrics_math(monkeypatch):
    """Counts, totals and min/max/last derive from monotonic clock deltas."""
    import repro.middleware.builtin as builtin
    from repro.middleware import (
        MiddlewareChain,
        MiddlewareContext,
        TimingMiddleware,
        middleware_metrics,
        reset_middleware_metrics,
    )

    reset_middleware_metrics()
    # Two perf_counter reads per interception: entry, then exit.  Durations
    # 0.5s, 0.25s and 1.0s, with the error raised inside the third call.
    ticks = iter([0.0, 0.5, 10.0, 10.25, 20.0, 21.0])
    monkeypatch.setattr(builtin.time, "perf_counter", lambda: next(ticks))
    timing = TimingMiddleware()
    chain = MiddlewareChain((timing,))
    context = MiddlewareContext(seam="dispatch", name="probe", started=0.0)

    assert chain.run(context, lambda: "a") == "a"
    assert chain.run(context, lambda: "b") == "b"
    with pytest.raises(RuntimeError, match="boom"):
        chain.run(context, lambda: (_ for _ in ()).throw(RuntimeError("boom")))

    expected = {"count": 3, "errors": 1, "total_s": 1.75,
                "min_s": 0.25, "max_s": 1.0, "last_s": 1.0}
    assert timing.metrics["dispatch"] == pytest.approx(expected)
    # The process-wide registry (what ``repro config --json`` surfaces)
    # mirrors the instance numbers exactly.
    assert middleware_metrics()["dispatch"] == pytest.approx(expected)
    reset_middleware_metrics()
    assert middleware_metrics() == {}


# ----------------------------------------------------- simulate_job consumers


def test_simulate_job_auto_picks_heap_below_threshold(job):
    result = simulate_job(job, 1)
    resolved = result.resolved_policy
    assert resolved.policy.scheduler == "auto"
    assert resolved.op_count < resolved.policy.auto_vector_threshold
    assert resolved.scheduler == "heap"
    assert not isinstance(result.schedule, VectorSchedule)


def test_simulate_job_auto_picks_vector_above_threshold(job):
    with configure(auto_vector_threshold=1):
        result = simulate_job(job, 1)
    resolved = result.resolved_policy
    assert resolved.scheduler == "vector"
    assert resolved.op_count >= 1
    assert isinstance(result.schedule, VectorSchedule)


def test_simulate_job_records_what_actually_ran(job):
    result = simulate_job(job, 1, policy=ExecutionPolicy(scheduler="vector"))
    resolved = result.resolved_policy
    assert resolved.scheduler == "vector"
    assert resolved.op_backend == "batch"
    assert not resolved.op_backend_fallback
    assert resolved.op_count == len(result.schedule.ops)


def test_simulate_job_rejects_policy_plus_legacy_kwargs(job):
    with pytest.warns(DeprecationWarning), pytest.raises(ConfigurationError):
        simulate_job(job, 1, policy=ExecutionPolicy(), op_backend="batch")


def test_simulate_job_rejects_non_policy(job):
    with pytest.raises(ConfigurationError, match="ExecutionPolicy"):
        simulate_job(job, 1, policy="heap")


def test_legacy_kwargs_warn_and_match_policy_path(job):
    reset_op_counter()
    with pytest.warns(DeprecationWarning, match="scheduler_backend"):
        legacy = simulate_job(job, 1, scheduler_backend="vector")
    reset_op_counter()
    modern = simulate_job(job, 1, policy=ExecutionPolicy(scheduler="vector"))
    assert [(i.op.op_id, i.start, i.end) for i in legacy.schedule.ops] == \
           [(i.op.op_id, i.start, i.end) for i in modern.schedule.ops]


def test_trainer_accepts_a_policy():
    config = TrainingJobConfig(model="7B", strategy="deep-optimizer-states",
                               iterations=2, warmup_iterations=1, check_memory=False)
    pinned = Trainer(config, policy=ExecutionPolicy(scheduler="vector")).run()
    ambient = Trainer(config).run()
    # Backends are schedule-identical, so the reports agree exactly.
    assert pinned.breakdowns == ambient.breakdowns
    assert pinned.end_to_end_seconds == ambient.end_to_end_seconds


# ----------------------------------------------------- SweepRunner serialization


def _policy_probe(**params):
    """Module-level worker reporting the policy its resolution context yields."""
    resolved = ExecutionPolicy.resolve()
    return {
        "scheduler": resolved.scheduler,
        "op_backend": resolved.op_backend,
        "auto_vector_threshold": resolved.auto_vector_threshold,
        "sources": dict(resolved.sources),
    }


def test_runner_binds_policy_at_construction():
    policy = ExecutionPolicy(jobs=2, scheduler="vector", use_cache=False)
    runner = SweepRunner(_policy_probe, policy=policy)
    assert (runner.jobs, runner.scheduler, runner.use_cache) == (2, "vector", False)
    assert runner.policy is policy


def test_runner_rejects_policy_plus_individual_kwargs():
    with pytest.raises(ConfigurationError, match="not both"):
        SweepRunner(_policy_probe, policy=ExecutionPolicy(), jobs=2)
    with pytest.raises(ConfigurationError, match="ExecutionPolicy"):
        SweepRunner(_policy_probe, policy="vector")


def test_runner_resolves_construction_context_not_run_context():
    with configure(scheduler="vector"):
        runner = SweepRunner(_policy_probe)
    # The policy was bound under the construction context; running outside it
    # still ships the bound decisions to the workers.
    result = runner.run(SweepSpec.build({"x": (1,)}))
    assert result.records[0].value["scheduler"] == "vector"


@pytest.mark.parametrize("jobs", [1, 2])
def test_workers_resolve_the_serialized_policy_at_context_level(monkeypatch, jobs, tmp_path):
    # Worker-side env (inherited by fork or present in-process) must lose to
    # the explicitly serialized policy: context > env.
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
    monkeypatch.setenv("REPRO_AUTO_VECTOR_THRESHOLD", "7")
    runner = SweepRunner(_policy_probe, jobs=jobs, scheduler="vector",
                         cache_dir=tmp_path)
    values = [record.value for record in runner.run(SweepSpec.build({"x": (1, 2)})).records]
    for value in values:
        assert value["scheduler"] == "vector"
        # Un-overridden fields were resolved at the parent (threshold 7 from its
        # env) and shipped whole: the worker sees them at the *context* level.
        assert value["auto_vector_threshold"] == 7
        assert set(value["sources"].values()) == {"context"}


def test_policy_context_requires_a_policy():
    with pytest.raises(ConfigurationError):
        policy_context({"scheduler": "vector"})


# ------------------------------------------------------------------------ CLI


def test_cli_config_prints_fields_and_sources(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    for name in POLICY_FIELDS:
        assert name in out
    assert "auto" in out and "default" in out and "source" in out


def test_cli_config_json_marks_global_flags_as_args(capsys):
    assert main(["--scheduler", "vector", "--op-backend", "objects",
                 "config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scheduler"] == {"value": "vector", "source": "arg"}
    assert payload["op_backend"] == {"value": "objects", "source": "arg"}
    assert payload["jobs"]["source"] == "default"


def test_cli_config_reports_env_sources(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "vector")
    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scheduler"] == {"value": "vector", "source": "env"}


def test_cli_config_reports_trace_fields_with_sources(monkeypatch, capsys):
    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"] == {"value": False, "source": "default"}
    assert payload["trace_out"] == {"value": None, "source": "default"}

    monkeypatch.setenv("REPRO_TRACE", "1")
    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"] == {"value": True, "source": "env"}
    monkeypatch.delenv("REPRO_TRACE")

    assert main(["--trace", "config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"] == {"value": True, "source": "arg"}


def test_cli_trace_out_implies_trace(capsys):
    # Naming an export file turns tracing on: an empty trace file would be
    # the only other possible outcome, and nobody asks for that.
    assert main(["--trace-out", "/tmp/t.json", "config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # The implication rides on the command's policy context (so every
    # subcommand's own resolution sees it), hence "context" not "arg".
    assert payload["trace"]["value"] is True
    assert payload["trace"]["source"] in ("arg", "context")
    assert payload["trace_out"]["value"] == "/tmp/t.json"
    assert payload["trace_out"]["source"] == "arg"


def test_cli_global_flags_do_not_outlive_the_command(capsys):
    assert main(["--scheduler", "vector", "list-presets"]) == 0
    assert ExecutionPolicy.resolve().scheduler == "auto"


# ------------------------------------------- unrelated broken env isolation


def test_simulate_job_ignores_broken_sweep_env_vars(monkeypatch, job):
    # simulate_job consumes only the simulation fields; garbage in the
    # sweep-level variables must not fail it (it did before env_fields).
    monkeypatch.setenv("REPRO_SWEEP_USE_CACHE", "maybe")
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "garbage")
    result = simulate_job(job, 1)
    assert result.schedule.ops
    assert result.resolved_policy.policy.use_cache is False  # default, env skipped


def test_simulate_job_still_rejects_broken_simulation_env(monkeypatch, job):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "quantum")
    with pytest.raises(ConfigurationError, match="quantum"):
        simulate_job(job, 1)


def test_env_fields_restriction_still_honours_context_and_args(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "garbage")
    with configure(jobs=5):
        assert ExecutionPolicy.resolve(env_fields=("scheduler",)).jobs == 5
    assert ExecutionPolicy.resolve(env_fields=("scheduler",), jobs=7).jobs == 7


def test_cli_help_survives_broken_env(monkeypatch, capsys):
    # Parser construction must never resolve the policy: --help (and every
    # other command) has to work in the very environment config diagnoses.
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "garbage")
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "usage: repro" in capsys.readouterr().out


def test_cli_config_reports_broken_env_as_error_rows(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "garbage")
    assert main(["config"]) == 1
    out = capsys.readouterr().out
    assert "<error:" in out and "garbage" in out
    assert "scheduler" in out  # healthy fields still report

    assert main(["config", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"]["source"] == "error" and "garbage" in payload["jobs"]["error"]
    assert payload["scheduler"] == {"value": "auto", "source": "default"}
