"""Tests for model presets (Table 2 architectures plus tiny test models)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.model.presets import (
    MODEL_PRESETS,
    PAPER_MODEL_ORDER,
    TINY_MODELS,
    get_model_preset,
    list_model_presets,
)

PAPER_ARCHITECTURES = {
    "7B": (32, 4096, 32),
    "8.3B": (72, 3072, 24),
    "10B": (50, 4096, 32),
    "13B": (40, 5120, 40),
    "20B": (48, 6144, 64),
}


@pytest.mark.parametrize("name", PAPER_MODEL_ORDER)
def test_paper_architectures_match_table2(name):
    layers, hidden, heads = PAPER_ARCHITECTURES[name]
    config = MODEL_PRESETS[name]
    assert config.num_layers == layers
    assert config.hidden_size == hidden
    assert config.num_attention_heads == heads
    assert config.sequence_length == 2048


def test_paper_order_is_increasing_in_size():
    sizes = [MODEL_PRESETS[name].num_parameters() for name in PAPER_MODEL_ORDER]
    # 8.3B has more layers but smaller hidden size than 10B; overall sizes still increase.
    assert sizes == sorted(sizes)


def test_listing_and_lookup():
    names = list_model_presets()
    assert names == list(PAPER_MODEL_ORDER)
    assert set(list_model_presets(include_tiny=True)) >= set(TINY_MODELS)
    assert get_model_preset("13B") is MODEL_PRESETS["13B"]
    assert get_model_preset("nano") is TINY_MODELS["nano"]
    with pytest.raises(ConfigurationError):
        get_model_preset("33B")


def test_tiny_models_are_actually_tiny():
    for config in TINY_MODELS.values():
        assert config.num_parameters() < 10_000_000
        assert config.sequence_length <= 64
