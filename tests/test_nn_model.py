"""Tests for the miniature transformer language model."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.model.nn.model import TinyTransformerLM


@pytest.fixture
def model(nano_config):
    return TinyTransformerLM(nano_config, seed=0)


@pytest.fixture
def batch(nano_config, rng):
    tokens = rng.integers(0, nano_config.vocab_size, size=(2, nano_config.sequence_length))
    targets = rng.integers(0, nano_config.vocab_size, size=(2, nano_config.sequence_length))
    return tokens, targets


def test_forward_shapes_and_loss(model, nano_config, batch):
    tokens, targets = batch
    logits, loss = model.forward(tokens, targets)
    assert logits.shape == (2, nano_config.sequence_length, nano_config.vocab_size)
    assert loss is not None and np.isfinite(loss)
    # With random weights the loss is close to log(vocab_size).
    assert loss == pytest.approx(np.log(nano_config.vocab_size), rel=0.35)


def test_forward_without_targets_has_no_loss(model, batch):
    tokens, _ = batch
    logits, loss = model.forward(tokens)
    assert loss is None
    assert logits.shape[0] == 2


def test_forward_validates_input_shape(model, nano_config):
    with pytest.raises(ConfigurationError):
        model.forward(np.zeros(nano_config.sequence_length, dtype=np.int64))
    with pytest.raises(ConfigurationError):
        model.forward(np.zeros((1, nano_config.sequence_length + 1), dtype=np.int64))


def test_backward_requires_forward_and_targets(model, batch):
    with pytest.raises(ConfigurationError):
        TinyTransformerLM(model.config, seed=1).backward()
    tokens, _ = batch
    model.forward(tokens)
    with pytest.raises(ConfigurationError):
        model.backward()


def test_parameter_count_matches_flatten(model):
    flat = model.flatten_parameters()
    assert flat.size == model.num_parameters()
    grads = model.flatten_gradients()
    assert grads.size == flat.size


def test_flatten_load_roundtrip(model):
    flat = model.flatten_parameters()
    perturbed = flat + 0.25
    model.load_flat_parameters(perturbed)
    np.testing.assert_allclose(model.flatten_parameters(), perturbed, atol=1e-6)
    with pytest.raises(ConfigurationError):
        model.load_flat_parameters(flat[:-1])


def test_gradients_flow_to_every_parameter(model, batch):
    tokens, targets = batch
    loss, grads = model.train_step_gradients(tokens, targets)
    assert np.isfinite(loss)
    assert np.isfinite(grads).all()
    named = model.named_gradients()
    zero_fraction = sum(1 for g in named.values() if np.allclose(g, 0.0)) / len(named)
    assert zero_fraction < 0.1  # essentially every tensor receives gradient signal


def test_training_step_gradient_descent_reduces_loss(model, batch):
    tokens, targets = batch
    loss_before, grads = model.train_step_gradients(tokens, targets)
    flat = model.flatten_parameters()
    model.load_flat_parameters(flat - 0.05 * grads)
    loss_after, _ = model.train_step_gradients(tokens, targets)
    assert loss_after < loss_before


def test_whole_model_gradient_check(nano_config):
    model = TinyTransformerLM(nano_config, seed=3)
    rng = make_rng(11)
    tokens = rng.integers(0, nano_config.vocab_size, size=(1, 8))
    targets = rng.integers(0, nano_config.vocab_size, size=(1, 8))
    _, grads = model.train_step_gradients(tokens, targets)
    flat = model.flatten_parameters().astype(np.float64)
    eps = 1e-3
    picks = rng.integers(0, flat.size, size=10)
    for index in picks:
        perturbed = flat.copy()
        perturbed[index] += eps
        model.load_flat_parameters(perturbed.astype(np.float32))
        _, loss_plus = model.forward(tokens, targets)
        perturbed[index] -= 2 * eps
        model.load_flat_parameters(perturbed.astype(np.float32))
        _, loss_minus = model.forward(tokens, targets)
        model.load_flat_parameters(flat.astype(np.float32))
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert grads[index] == pytest.approx(numeric, abs=5e-2)


def test_same_seed_gives_same_initialisation(nano_config):
    a = TinyTransformerLM(nano_config, seed=42).flatten_parameters()
    b = TinyTransformerLM(nano_config, seed=42).flatten_parameters()
    np.testing.assert_array_equal(a, b)
    c = TinyTransformerLM(nano_config, seed=43).flatten_parameters()
    assert not np.allclose(a, c)
