"""Tests for training job configuration and resolution."""

import pytest

from repro.baselines import TwinFlowBaseline
from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.core.engine import DeepOptimizerStates
from repro.hardware.presets import JLSE_H100_NODE
from repro.model.presets import MODEL_PRESETS
from repro.training.config import TrainingJobConfig


def test_defaults_resolve_to_paper_setup():
    job = TrainingJobConfig().resolve()
    assert job.model.name == "20B"
    assert job.machine.name == "jlse-4xh100"
    assert isinstance(job.strategy, DeepOptimizerStates)
    assert job.data_parallel_degree == 4
    assert job.config.subgroup_size == 100_000_000
    assert 50 <= job.num_subgroups <= 60
    assert job.rank_parameters == -(-job.model.num_parameters() // 4)


def test_strategy_and_machine_objects_accepted():
    config = TrainingJobConfig(
        model=MODEL_PRESETS["7B"],
        machine=JLSE_H100_NODE,
        strategy=TwinFlowBaseline(static_gpu_fraction=0.2),
    )
    job = config.resolve()
    assert job.strategy.name == "twinflow"
    assert job.strategy.static_gpu_fraction == 0.2
    assert job.plan.gpu_indices()  # static residents exist


def test_data_parallel_degree_shrinks_machine():
    job = TrainingJobConfig(model="7B", data_parallel_degree=2).resolve()
    assert job.machine.num_gpus == 2
    assert job.data_parallel_degree == 2
    # Fewer ranks -> each rank owns more parameters and subgroups.
    full = TrainingJobConfig(model="7B").resolve()
    assert job.num_subgroups > full.num_subgroups


def test_cpu_cores_override_affects_profile():
    few = TrainingJobConfig(model="7B", cpu_cores_per_gpu=10).resolve()
    many = TrainingJobConfig(model="7B", cpu_cores_per_gpu=38).resolve()
    assert few.profile.cpu_update_pps < many.profile.cpu_update_pps


def test_cpu_cores_plateau_beyond_dram_saturation():
    at_saturation = TrainingJobConfig(model="7B", cpu_cores_per_gpu=38).resolve()
    beyond = TrainingJobConfig(model="7B", cpu_cores_per_gpu=48).resolve()
    assert beyond.profile.cpu_update_pps == pytest.approx(at_saturation.profile.cpu_update_pps)


def test_oom_configuration_raises_when_memory_checked():
    config = TrainingJobConfig(model="20B", microbatch_size=16)
    with pytest.raises(OutOfMemoryError):
        config.resolve()
    unchecked = TrainingJobConfig(model="20B", microbatch_size=16, check_memory=False)
    assert unchecked.resolve().config.microbatch_size == 16


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        TrainingJobConfig(microbatch_size=0)
    with pytest.raises(ConfigurationError):
        TrainingJobConfig(iterations=0)
    with pytest.raises(ConfigurationError):
        TrainingJobConfig(iterations=2, warmup_iterations=2)
    with pytest.raises(ConfigurationError):
        TrainingJobConfig(subgroup_size=0)
    with pytest.raises(ConfigurationError):
        TrainingJobConfig(forward_chunks=0)


def test_describe_reports_key_settings():
    job = TrainingJobConfig(model="13B", strategy="zero3-offload").resolve()
    description = job.describe()
    assert description["model"] == "13B"
    assert description["strategy"] == "zero3-offload"
    assert description["data_parallel_degree"] == 4
    assert description["num_subgroups_per_rank"] == job.num_subgroups


def test_update_stride_override_propagates_to_plan():
    job = TrainingJobConfig(model="7B", strategy="deep-optimizer-states", update_stride=4).resolve()
    assert job.plan.stride == 4
    assert job.plan.gpu_fraction() == pytest.approx(0.25, abs=0.05)
