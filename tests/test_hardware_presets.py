"""Tests for the machine presets."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hardware.presets import (
    AWS_P3DN,
    JLSE_H100_NODE,
    LAMBDA_V100_NODE,
    POLARIS_A100_NODE,
    get_machine_preset,
    list_machine_presets,
)


def test_all_presets_listed():
    names = list_machine_presets()
    assert set(names) >= {"jlse-4xh100", "4xv100", "polaris-4xa100", "aws-p3dn-24xlarge"}


def test_lookup_returns_same_object():
    assert get_machine_preset("jlse-4xh100") is JLSE_H100_NODE
    assert get_machine_preset("4xv100") is LAMBDA_V100_NODE


def test_unknown_preset_raises():
    with pytest.raises(ConfigurationError):
        get_machine_preset("dgx-gh200")


def test_jlse_matches_section_5_1():
    node = JLSE_H100_NODE
    assert node.num_gpus == 4
    assert node.gpu.memory_gib == 80
    assert node.cpu.total_cores == 96
    assert node.cpu.total_threads == 192
    assert node.host_memory.capacity_gib == 512
    assert node.host_memory.numa_domains == 2
    assert node.pcie.generation == 5
    assert node.pcie.h2d_gbps_pinned == pytest.approx(55)
    assert node.nvlink.d2d_gbps == pytest.approx(133)
    # Pageable transfers are asymmetric and much slower, as reported in §5.1.
    assert node.pcie.d2h_gbps_pageable == pytest.approx(16)
    assert node.pcie.h2d_gbps_pageable == pytest.approx(9)


def test_v100_machine_matches_section_5_4():
    node = LAMBDA_V100_NODE
    assert node.num_gpus == 4
    assert node.gpu.memory_gib == 32
    assert node.cpu.total_cores == 44
    assert node.host_memory.capacity_gib == 192


def test_secondary_presets_are_plausible():
    assert POLARIS_A100_NODE.num_gpus == 4
    assert POLARIS_A100_NODE.cpu.total_cores == 32
    assert AWS_P3DN.num_gpus == 8
    # Every preset must expose positive aggregate GPU update throughput.
    for node in (JLSE_H100_NODE, LAMBDA_V100_NODE, POLARIS_A100_NODE, AWS_P3DN):
        assert node.aggregate_gpu_update_pps > 0
