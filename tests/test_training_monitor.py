"""Tests for the NVML-style resource monitor."""

import pytest

from repro.training.config import TrainingJobConfig
from repro.training.monitor import ResourceMonitor
from repro.training.simulation import simulate_job


@pytest.fixture(scope="module")
def zero3_monitor():
    job = TrainingJobConfig(model="7B", strategy="zero3-offload", iterations=2, warmup_iterations=0).resolve()
    return ResourceMonitor(simulate_job(job, iterations=1))


@pytest.fixture(scope="module")
def dos_monitor():
    job = TrainingJobConfig(
        model="7B", strategy="deep-optimizer-states", iterations=2, warmup_iterations=0
    ).resolve()
    return ResourceMonitor(simulate_job(job, iterations=1))


def test_memory_timeline_and_peak(zero3_monitor):
    timeline = zero3_monitor.gpu_memory_timeline()
    assert timeline.peak_bytes == zero3_monitor.peak_gpu_memory_bytes()
    assert timeline.peak_bytes > 0


def test_phase_samples_cover_all_phases(zero3_monitor):
    samples = zero3_monitor.phase_samples(0)
    assert set(samples) == {"forward", "backward", "update"}
    for sample in samples.values():
        assert 0.0 <= sample.gpu_utilization <= 1.0
        assert 0.0 <= sample.cpu_utilization <= 1.0
        assert sample.pcie_h2d_gbps >= 0.0
        assert sample.pcie_d2h_gbps >= 0.0


def test_pcie_stays_far_below_peak_for_baseline(zero3_monitor):
    """The Figure 4 observation: the baseline uses a small fraction of the PCIe peak."""
    samples = zero3_monitor.phase_samples(0)
    peak = 55.0
    for sample in samples.values():
        assert sample.pcie_h2d_gbps < 0.5 * peak
        assert sample.pcie_d2h_gbps < 0.5 * peak


def test_update_phase_gpu_utilization_higher_for_dos(zero3_monitor, dos_monitor):
    """The Figure 15 observation: interleaving drives GPU/PCIe utilisation up."""
    zero3 = zero3_monitor.update_phase_sample(0)
    dos = dos_monitor.update_phase_sample(0)
    assert dos.gpu_utilization > zero3.gpu_utilization
    assert dos.pcie_h2d_gbps > zero3.pcie_h2d_gbps
    assert dos.pcie_d2h_gbps > zero3.pcie_d2h_gbps


def test_cpu_utilization_high_during_baseline_update(zero3_monitor):
    sample = zero3_monitor.update_phase_sample(0)
    assert sample.cpu_utilization > 0.5


def test_mean_pcie_gbps_zero_for_empty_window(zero3_monitor):
    assert zero3_monitor.mean_pcie_gbps("h2d", (1.0, 1.0)) == 0.0


def test_gpu_utilization_counts_copy_engines(dos_monitor):
    """NVML counts DMA activity as GPU activity; the monitor mirrors that artefact."""
    window = dos_monitor.result.update_window(0)
    compute_only = dos_monitor.schedule.utilization("gpu.compute", window)
    with_copies = dos_monitor.gpu_utilization(window)
    assert with_copies >= compute_only
