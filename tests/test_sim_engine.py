"""Tests for the discrete-event engine: FIFO resources, dependencies, overlap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimEngine, standard_resources
from repro.sim.ops import OpKind, SimOp


def make_engine() -> SimEngine:
    engine = SimEngine()
    engine.add_resource("cpu")
    engine.add_resource("gpu")
    engine.add_resource("link")
    return engine


def test_fifo_order_on_single_resource():
    engine = make_engine()
    first = SimOp("a", OpKind.CPU_UPDATE, "cpu", 1.0)
    second = SimOp("b", OpKind.CPU_UPDATE, "cpu", 2.0)
    engine.submit(first)
    engine.submit(second)
    schedule = engine.run()
    assert schedule.by_id(first.op_id).start == 0.0
    assert schedule.by_id(first.op_id).end == 1.0
    assert schedule.by_id(second.op_id).start == 1.0
    assert schedule.by_id(second.op_id).end == 3.0
    assert schedule.makespan == 3.0


def test_independent_resources_overlap():
    engine = make_engine()
    cpu_op = SimOp("cpu", OpKind.CPU_UPDATE, "cpu", 2.0)
    gpu_op = SimOp("gpu", OpKind.GPU_UPDATE, "gpu", 2.0)
    engine.submit(cpu_op)
    engine.submit(gpu_op)
    schedule = engine.run()
    assert schedule.makespan == 2.0
    assert schedule.utilization("cpu") == pytest.approx(1.0)
    assert schedule.utilization("gpu") == pytest.approx(1.0)


def test_dependencies_delay_start():
    engine = make_engine()
    producer = SimOp("produce", OpKind.GPU_COMPUTE, "gpu", 1.5)
    consumer = SimOp("consume", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(producer.op_id,))
    engine.submit(producer)
    engine.submit(consumer)
    schedule = engine.run()
    assert schedule.by_id(consumer.op_id).start == pytest.approx(1.5)
    assert schedule.makespan == pytest.approx(2.5)


def test_head_of_line_blocking_matches_cuda_stream_semantics():
    engine = make_engine()
    slow_producer = SimOp("producer", OpKind.GPU_COMPUTE, "gpu", 5.0)
    blocked = SimOp("blocked", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(slow_producer.op_id,))
    ready = SimOp("ready", OpKind.CPU_UPDATE, "cpu", 1.0)
    engine.submit(slow_producer)
    engine.submit(blocked)
    engine.submit(ready)
    schedule = engine.run()
    # "ready" was submitted after "blocked" on the same FIFO resource, so it cannot
    # jump the queue even though its dependencies are satisfied earlier.
    assert schedule.by_id(ready.op_id).start >= schedule.by_id(blocked.op_id).end - 1e-9


def test_release_time_not_before():
    engine = make_engine()
    op = SimOp("late", OpKind.CPU_UPDATE, "cpu", 1.0)
    engine.submit(op, not_before=3.0)
    schedule = engine.run()
    assert schedule.by_id(op.op_id).start == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        engine.submit(SimOp("x", OpKind.CPU_UPDATE, "cpu", 1.0), not_before=-1.0)


def test_unknown_resource_and_unknown_dependency_fail():
    engine = make_engine()
    with pytest.raises(ConfigurationError):
        engine.submit(SimOp("x", OpKind.CPU_UPDATE, "nvme", 1.0))
    engine.submit(SimOp("y", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(10_000_000,)))
    with pytest.raises(SimulationError):
        engine.run()


def test_negative_duration_rejected():
    with pytest.raises(ConfigurationError):
        SimOp("bad", OpKind.CPU_UPDATE, "cpu", -1.0)


def test_schedule_queries_filter_and_busy_time():
    engine = make_engine()
    a = SimOp("a", OpKind.H2D, "link", 2.0, phase="update", payload_bytes=100)
    b = SimOp("b", OpKind.D2H, "link", 1.0, phase="update", payload_bytes=50)
    c = SimOp("c", OpKind.GPU_COMPUTE, "gpu", 4.0, phase="forward")
    engine.submit_many([a, b, c])
    schedule = engine.run()
    assert len(schedule.filter(resource="link")) == 2
    assert len(schedule.filter(kind=OpKind.H2D)) == 1
    assert len(schedule.filter(phase="update")) == 2
    assert schedule.busy_time("link") == pytest.approx(3.0)
    assert schedule.phase_duration("forward") == pytest.approx(4.0)
    assert schedule.transferred_bytes(OpKind.H2D) == pytest.approx(100)
    # Clipping a window to half of op "a" pro-rates its payload.
    assert schedule.transferred_bytes(OpKind.H2D, (0.0, 1.0)) == pytest.approx(50)


def test_end_of_helper():
    engine = make_engine()
    a = SimOp("a", OpKind.CPU_UPDATE, "cpu", 1.0)
    b = SimOp("b", OpKind.CPU_UPDATE, "cpu", 2.0)
    engine.submit_many([a, b])
    schedule = engine.run()
    assert schedule.end_of([a.op_id, b.op_id]) == pytest.approx(3.0)
    assert schedule.end_of([]) == 0.0


def test_engine_is_single_shot():
    engine = make_engine()
    engine.submit(SimOp("a", OpKind.CPU_UPDATE, "cpu", 1.0))
    assert engine.pending_ops == 1
    engine.run()
    assert engine.pending_ops == 0
    # A second run with no submissions yields an empty schedule.
    assert engine.run().makespan == 0.0


def test_standard_resources_registered():
    engine = SimEngine()
    standard_resources(engine)
    for name in ("gpu.compute", "pcie.h2d", "pcie.d2h", "cpu", "nvlink"):
        assert engine.has_resource(name)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.floats(0.01, 2.0)),
        min_size=1,
        max_size=30,
    ),
    st.data(),
)
def test_random_dags_schedule_consistently(jobs, data):
    """Random chains with random dependencies always produce a valid schedule."""
    resources = ["cpu", "gpu", "link"]
    engine = make_engine()
    submitted: list[SimOp] = []
    for resource_index, duration in jobs:
        deps = ()
        if submitted:
            dep = data.draw(st.integers(0, len(submitted) - 1))
            deps = (submitted[dep].op_id,)
        op = SimOp(
            name=f"op{len(submitted)}",
            kind=OpKind.GPU_COMPUTE,
            resource=resources[resource_index],
            duration=duration,
            deps=deps,
        )
        engine.submit(op)
        submitted.append(op)
    schedule = engine.run()
    schedule.validate()
    # Work conservation: the makespan is at least the busiest resource's total work
    # and at most the sum of all durations.
    total = sum(op.duration for op in submitted)
    busiest = max(sum(op.duration for op in submitted if op.resource == r) for r in resources)
    assert schedule.makespan >= busiest - 1e-9
    assert schedule.makespan <= total + 1e-9


# ---------------------------------------------------------------------- indexed queries


def _window_schedule():
    """Two link transfers and one gpu op with known intervals for window tests."""
    engine = make_engine()
    a = SimOp("a", OpKind.H2D, "link", 2.0, phase="update", payload_bytes=100)
    b = SimOp("b", OpKind.D2H, "link", 1.0, phase="update", payload_bytes=50)
    c = SimOp("c", OpKind.GPU_COMPUTE, "gpu", 4.0, phase="forward")
    engine.submit_many([a, b, c])
    return engine.run(), a, b, c


def test_by_id_unknown_op_raises_keyerror():
    schedule, a, _, _ = _window_schedule()
    assert schedule.by_id(a.op_id).op is a
    with pytest.raises(KeyError, match="no scheduled op"):
        schedule.by_id(10_000_000)


def test_filter_combined_criteria_and_missing_keys():
    schedule, a, b, c = _window_schedule()
    # resource + kind narrows to a single op.
    assert [i.op.op_id for i in schedule.filter(resource="link", kind=OpKind.H2D)] == [a.op_id]
    # kind + phase with no match.
    assert schedule.filter(kind=OpKind.H2D, phase="forward") == []
    # unknown resource/kind/phase return empty, not KeyError.
    assert schedule.filter(resource="nvme") == []
    assert schedule.filter(kind=OpKind.BARRIER) == []
    assert schedule.filter(phase="nonexistent") == []
    # subgroup predicate composes with an indexed criterion.
    assert schedule.filter(resource="link", subgroup=7) == []
    # repeated queries hit the same index and stay consistent.
    assert schedule.filter(resource="link") == schedule.filter(resource="link")


def test_filter_preserves_schedule_order():
    schedule, a, b, _ = _window_schedule()
    link_ops = schedule.filter(resource="link")
    assert [item.op.op_id for item in link_ops] == [a.op_id, b.op_id]
    assert link_ops == sorted(link_ops, key=lambda item: (item.start, item.op.op_id))


def test_busy_time_window_edges():
    schedule, _, _, _ = _window_schedule()
    # ops "a" [0,2] and "b" [2,3] on link.
    assert schedule.busy_time("link", (0.0, 3.0)) == pytest.approx(3.0)
    # window touching only a boundary contributes nothing.
    assert schedule.busy_time("link", (3.0, 3.0)) == 0.0
    # inverted window contributes nothing.
    assert schedule.busy_time("link", (2.5, 1.0)) == 0.0
    # window clipping the middle of both ops.
    assert schedule.busy_time("link", (1.5, 2.5)) == pytest.approx(1.0)
    # window entirely outside the schedule.
    assert schedule.busy_time("link", (10.0, 20.0)) == 0.0
    assert schedule.busy_time("nvme") == 0.0


def test_transferred_bytes_window_edges():
    schedule, _, _, _ = _window_schedule()
    # full payload without a window.
    assert schedule.transferred_bytes(OpKind.D2H) == pytest.approx(50)
    # window covering exactly op "b" [2,3].
    assert schedule.transferred_bytes(OpKind.D2H, (2.0, 3.0)) == pytest.approx(50)
    # half window pro-rates.
    assert schedule.transferred_bytes(OpKind.D2H, (2.0, 2.5)) == pytest.approx(25)
    # boundary-only and disjoint windows transfer nothing.
    assert schedule.transferred_bytes(OpKind.D2H, (3.0, 3.0)) == 0.0
    assert schedule.transferred_bytes(OpKind.D2H, (5.0, 9.0)) == 0.0
    # zero-duration transfers with payload are skipped, not divided by zero.
    engine = make_engine()
    engine.submit(SimOp("z", OpKind.H2D, "link", 0.0, payload_bytes=10))
    zero = engine.run()
    assert zero.transferred_bytes(OpKind.H2D) == 0.0


def test_phase_window_and_utilization_edges():
    schedule, _, _, _ = _window_schedule()
    assert schedule.phase_window("update") == (0.0, 3.0)
    assert schedule.phase_window("missing") == (0.0, 0.0)
    assert schedule.utilization("gpu") == pytest.approx(1.0)
    assert schedule.utilization("gpu", (0.0, 0.0)) == 0.0
    empty = SimEngine()
    empty.add_resource("cpu")
    assert empty.run().utilization("cpu") == 0.0
