"""Tests for the discrete-event engine: FIFO resources, dependencies, overlap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimEngine, standard_resources
from repro.sim.ops import OpKind, SimOp


def make_engine() -> SimEngine:
    engine = SimEngine()
    engine.add_resource("cpu")
    engine.add_resource("gpu")
    engine.add_resource("link")
    return engine


def test_fifo_order_on_single_resource():
    engine = make_engine()
    first = SimOp("a", OpKind.CPU_UPDATE, "cpu", 1.0)
    second = SimOp("b", OpKind.CPU_UPDATE, "cpu", 2.0)
    engine.submit(first)
    engine.submit(second)
    schedule = engine.run()
    assert schedule.by_id(first.op_id).start == 0.0
    assert schedule.by_id(first.op_id).end == 1.0
    assert schedule.by_id(second.op_id).start == 1.0
    assert schedule.by_id(second.op_id).end == 3.0
    assert schedule.makespan == 3.0


def test_independent_resources_overlap():
    engine = make_engine()
    cpu_op = SimOp("cpu", OpKind.CPU_UPDATE, "cpu", 2.0)
    gpu_op = SimOp("gpu", OpKind.GPU_UPDATE, "gpu", 2.0)
    engine.submit(cpu_op)
    engine.submit(gpu_op)
    schedule = engine.run()
    assert schedule.makespan == 2.0
    assert schedule.utilization("cpu") == pytest.approx(1.0)
    assert schedule.utilization("gpu") == pytest.approx(1.0)


def test_dependencies_delay_start():
    engine = make_engine()
    producer = SimOp("produce", OpKind.GPU_COMPUTE, "gpu", 1.5)
    consumer = SimOp("consume", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(producer.op_id,))
    engine.submit(producer)
    engine.submit(consumer)
    schedule = engine.run()
    assert schedule.by_id(consumer.op_id).start == pytest.approx(1.5)
    assert schedule.makespan == pytest.approx(2.5)


def test_head_of_line_blocking_matches_cuda_stream_semantics():
    engine = make_engine()
    slow_producer = SimOp("producer", OpKind.GPU_COMPUTE, "gpu", 5.0)
    blocked = SimOp("blocked", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(slow_producer.op_id,))
    ready = SimOp("ready", OpKind.CPU_UPDATE, "cpu", 1.0)
    engine.submit(slow_producer)
    engine.submit(blocked)
    engine.submit(ready)
    schedule = engine.run()
    # "ready" was submitted after "blocked" on the same FIFO resource, so it cannot
    # jump the queue even though its dependencies are satisfied earlier.
    assert schedule.by_id(ready.op_id).start >= schedule.by_id(blocked.op_id).end - 1e-9


def test_release_time_not_before():
    engine = make_engine()
    op = SimOp("late", OpKind.CPU_UPDATE, "cpu", 1.0)
    engine.submit(op, not_before=3.0)
    schedule = engine.run()
    assert schedule.by_id(op.op_id).start == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        engine.submit(SimOp("x", OpKind.CPU_UPDATE, "cpu", 1.0), not_before=-1.0)


def test_unknown_resource_and_unknown_dependency_fail():
    engine = make_engine()
    with pytest.raises(ConfigurationError):
        engine.submit(SimOp("x", OpKind.CPU_UPDATE, "nvme", 1.0))
    engine.submit(SimOp("y", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(10_000_000,)))
    with pytest.raises(SimulationError):
        engine.run()


def test_negative_duration_rejected():
    with pytest.raises(ConfigurationError):
        SimOp("bad", OpKind.CPU_UPDATE, "cpu", -1.0)


def test_schedule_queries_filter_and_busy_time():
    engine = make_engine()
    a = SimOp("a", OpKind.H2D, "link", 2.0, phase="update", payload_bytes=100)
    b = SimOp("b", OpKind.D2H, "link", 1.0, phase="update", payload_bytes=50)
    c = SimOp("c", OpKind.GPU_COMPUTE, "gpu", 4.0, phase="forward")
    engine.submit_many([a, b, c])
    schedule = engine.run()
    assert len(schedule.filter(resource="link")) == 2
    assert len(schedule.filter(kind=OpKind.H2D)) == 1
    assert len(schedule.filter(phase="update")) == 2
    assert schedule.busy_time("link") == pytest.approx(3.0)
    assert schedule.phase_duration("forward") == pytest.approx(4.0)
    assert schedule.transferred_bytes(OpKind.H2D) == pytest.approx(100)
    # Clipping a window to half of op "a" pro-rates its payload.
    assert schedule.transferred_bytes(OpKind.H2D, (0.0, 1.0)) == pytest.approx(50)


def test_end_of_helper():
    engine = make_engine()
    a = SimOp("a", OpKind.CPU_UPDATE, "cpu", 1.0)
    b = SimOp("b", OpKind.CPU_UPDATE, "cpu", 2.0)
    engine.submit_many([a, b])
    schedule = engine.run()
    assert schedule.end_of([a.op_id, b.op_id]) == pytest.approx(3.0)
    assert schedule.end_of([]) == 0.0


def test_engine_is_single_shot():
    engine = make_engine()
    engine.submit(SimOp("a", OpKind.CPU_UPDATE, "cpu", 1.0))
    assert engine.pending_ops == 1
    engine.run()
    assert engine.pending_ops == 0
    # A second run with no submissions yields an empty schedule.
    assert engine.run().makespan == 0.0


def test_standard_resources_registered():
    engine = SimEngine()
    standard_resources(engine)
    for name in ("gpu.compute", "pcie.h2d", "pcie.d2h", "cpu", "nvlink"):
        assert engine.has_resource(name)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.floats(0.01, 2.0)),
        min_size=1,
        max_size=30,
    ),
    st.data(),
)
def test_random_dags_schedule_consistently(jobs, data):
    """Random chains with random dependencies always produce a valid schedule."""
    resources = ["cpu", "gpu", "link"]
    engine = make_engine()
    submitted: list[SimOp] = []
    for resource_index, duration in jobs:
        deps = ()
        if submitted:
            dep = data.draw(st.integers(0, len(submitted) - 1))
            deps = (submitted[dep].op_id,)
        op = SimOp(
            name=f"op{len(submitted)}",
            kind=OpKind.GPU_COMPUTE,
            resource=resources[resource_index],
            duration=duration,
            deps=deps,
        )
        engine.submit(op)
        submitted.append(op)
    schedule = engine.run()
    schedule.validate()
    # Work conservation: the makespan is at least the busiest resource's total work
    # and at most the sum of all durations.
    total = sum(op.duration for op in submitted)
    busiest = max(sum(op.duration for op in submitted if op.resource == r) for r in resources)
    assert schedule.makespan >= busiest - 1e-9
    assert schedule.makespan <= total + 1e-9
