"""repro.pipeline: stage-graph IR, schedule passes, lowering and simulation.

The contract under test (``docs/pipeline.md``):

* every schedule pass emits a valid IR — one ``F``/``B``/``W`` per
  ``(stage, microbatch)`` in F->B->W order, with derivable SEND/RECV pairing
  (:func:`repro.pipeline.validate_schedule`, exercised property-style over
  random grids);
* lowering produces op rows the ordinary engine schedules without ever
  double-booking a stage resource (``Schedule.validate``), byte-identically
  across the heap and vector backends and the objects/batch admission paths;
* the zero-bubble pass never loses to 1F1B on the same grid, and on the
  paper-preset acceptance grid (4 stages, 4..32 microbatches) it wins
  *strictly* at every point;
* the family is a first-class scenario axis: registry discovery, policy
  fields (``scenario_family``, ``pipeline_schedule``), CLI subcommand and the
  sweep worker all agree, and sweep results are byte-identical across
  serial/pool executors and heap/vector schedulers.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import STRATEGIES, build_strategy
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.common.registry import Registry
from repro.pipeline import (
    SCHEDULES,
    PipeOp,
    PipelineSchedule,
    PipelineTiming,
    ScheduledNode,
    available_schedules,
    build_pipeline_strategy,
    build_schedule,
    insert_comm_nodes,
    lower_schedule,
    pipeline_sweep,
    run_pipeline,
    simulate_pipeline,
    validate_schedule,
)
from repro.runtime import ExecutionPolicy, configure

FAMILIES = ("gpipe", "1f1b", "zb")

#: The acceptance grid: paper-preset timing, 4 stages, microbatches 4..32.
ACCEPTANCE_MICROBATCHES = (4, 8, 16, 32)


# ---------------------------------------------------------------- registry


def test_registry_canonicalizes_names_and_aliases():
    registry = Registry("test family")
    registry.register("My-Thing", lambda: "built", aliases=("Other_Name",),
                      description="a thing")
    assert registry.names() == ["my-thing"]
    for variant in ("my-thing", "MY_THING", "other-name", "other_name"):
        assert variant in registry
        assert registry.get(variant).name == "my-thing"
    assert registry.build("Other_Name") == "built"
    with pytest.raises(ConfigurationError, match="test family"):
        registry.get("unknown")
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.register("my_thing", lambda: None)


def test_schedule_registry_lists_all_families_with_aliases():
    assert available_schedules() == list(FAMILIES)
    assert SCHEDULES.get("zero-bubble").name == "zb"
    assert SCHEDULES.get("pipedream-flush").name == "1f1b"
    assert SCHEDULES.get("fill-drain").name == "gpipe"


def test_offload_strategies_share_the_registry_mechanism():
    assert STRATEGIES.names() == [
        "zero3-offload", "twinflow", "deep-optimizer-states",
    ]
    # Historical aliases keep resolving through the registry.
    assert type(build_strategy("dos")).__name__ == "DeepOptimizerStates"
    assert type(build_strategy("zero3")).__name__ == "Zero3OffloadBaseline"
    assert type(build_strategy("zero-offload++")).__name__ == "TwinFlowBaseline"
    with pytest.raises(ConfigurationError, match="offload strategy"):
        build_strategy("fsdp")


def test_build_pipeline_strategy_rejects_unknown_schedules():
    with pytest.raises(ConfigurationError, match="pipeline schedule"):
        build_pipeline_strategy("interleaved")


# ---------------------------------------------------------------------- IR


def test_scheduled_node_renders_compute_and_comm_forms():
    assert str(ScheduledNode(PipeOp.F, stage=0, microbatch=3)) == "F3@0"
    send = ScheduledNode(PipeOp.SEND, stage=0, microbatch=3, peer=1,
                         payload=PipeOp.F)
    assert str(send) == "SEND[F]3@0->1"


def test_insert_comm_nodes_is_idempotent_and_validates():
    schedule = build_schedule("1f1b", stages=3, microbatches=4)
    assert not schedule.has_comm_nodes
    full = insert_comm_nodes(schedule)
    assert full.has_comm_nodes
    validate_schedule(full)
    assert insert_comm_nodes(full) is full


def test_validate_schedule_rejects_broken_orders():
    nodes = lambda *pairs: tuple(
        ScheduledNode(op, stage, mb) for op, stage, mb in pairs
    )
    # B before F violates the per-microbatch F->B->W order.
    bad_order = PipelineSchedule(
        name="bad", stages=1, microbatches=1,
        orders=(nodes((PipeOp.B, 0, 0), (PipeOp.F, 0, 0), (PipeOp.W, 0, 0)),),
    )
    with pytest.raises(ConfigurationError, match="F->B->W"):
        validate_schedule(bad_order)
    # A missing W is incomplete.
    incomplete = PipelineSchedule(
        name="bad", stages=1, microbatches=1,
        orders=(nodes((PipeOp.F, 0, 0), (PipeOp.B, 0, 0)),),
    )
    with pytest.raises(ConfigurationError, match="missing a compute node"):
        validate_schedule(incomplete)
    # A duplicated F double-books the stage.
    duplicated = PipelineSchedule(
        name="bad", stages=1, microbatches=1,
        orders=(nodes((PipeOp.F, 0, 0), (PipeOp.F, 0, 0), (PipeOp.B, 0, 0),
                      (PipeOp.W, 0, 0)),),
    )
    with pytest.raises(ConfigurationError, match="duplicate"):
        validate_schedule(duplicated)


# ------------------------------------------------------- schedule properties

_GRIDS = st.tuples(st.integers(1, 6), st.integers(1, 12))


@st.composite
def _timings(draw):
    """Random timings under the greedy pass's comm model: light links.

    ``comm <= min(f, b) / 2`` (or exactly zero) keeps the inter-stage hop off
    the critical path the same way the presets do, which is the regime the
    zero-bubble pass's ready-time model matches the engine exactly.
    """
    f = draw(st.floats(0.1, 3.0, allow_nan=False))
    b = draw(st.floats(0.1, 3.0, allow_nan=False))
    w = draw(st.floats(0.0, 3.0, allow_nan=False))
    if draw(st.booleans()):
        comm = 0.0
    else:
        comm = draw(st.floats(0.0, min(f, b) / 2, allow_nan=False))
    return PipelineTiming(f_seconds=f, b_seconds=b, w_seconds=w,
                          comm_seconds=comm)


@settings(max_examples=60, deadline=None)
@given(_GRIDS, st.sampled_from(FAMILIES))
def test_every_pass_emits_a_valid_schedule(grid, family):
    """IR invariants hold on every grid: F->B->W per microbatch, completeness,
    comm pairing after insertion."""
    stages, microbatches = grid
    schedule = build_schedule(family, stages=stages, microbatches=microbatches)
    validate_schedule(schedule)
    validate_schedule(insert_comm_nodes(schedule))


@settings(max_examples=30, deadline=None)
@given(_GRIDS, st.sampled_from(FAMILIES), _timings())
def test_lowered_schedules_never_double_book_resources(grid, family, timing):
    """The engine-level schedule passes ``Schedule.validate`` (per-resource
    non-overlap) and runs every emitted op exactly once."""
    stages, microbatches = grid
    result = simulate_pipeline(
        schedule=family, stages=stages, microbatches=microbatches,
        timing=timing, policy=ExecutionPolicy(scheduler="heap"),
    )
    result.sim_schedule.validate()
    assert len(result.sim_schedule.ops) == result.op_count
    comm_hops = 2 * (stages - 1) * microbatches  # F and B cross every boundary
    assert result.op_count == 3 * stages * microbatches + 2 * comm_hops


@settings(max_examples=40, deadline=None)
@given(_GRIDS, _timings())
def test_zero_bubble_never_loses_to_1f1b(grid, timing):
    """zb makespan <= 1f1b makespan on the same grid, for any light-link timing."""
    stages, microbatches = grid
    policy = ExecutionPolicy(scheduler="heap")
    zb = simulate_pipeline(schedule="zb", stages=stages,
                           microbatches=microbatches, timing=timing,
                           policy=policy)
    baseline = simulate_pipeline(schedule="1f1b", stages=stages,
                                 microbatches=microbatches, timing=timing,
                                 policy=policy)
    assert zb.makespan_seconds <= baseline.makespan_seconds + 1e-9
    assert zb.bubble_fraction <= baseline.bubble_fraction + 1e-9


def test_zb_wins_strictly_on_the_acceptance_grid():
    """Paper-preset timing, 4 stages, 4..32 microbatches: zb < 1f1b everywhere."""
    for microbatches in ACCEPTANCE_MICROBATCHES:
        results = {
            name: simulate_pipeline(schedule=name, stages=4,
                                    microbatches=microbatches)
            for name in ("1f1b", "zb")
        }
        assert results["zb"].makespan_seconds < results["1f1b"].makespan_seconds, (
            f"zb must beat 1f1b strictly at microbatches={microbatches}"
        )
        assert results["zb"].bubble_fraction < results["1f1b"].bubble_fraction
        # And the bound stays a bound: no schedule beats the bubble-free ideal.
        for result in results.values():
            assert result.makespan_seconds >= result.ideal_seconds - 1e-9


def test_bubble_fraction_decays_with_microbatch_count():
    previous = None
    for microbatches in (2, 4, 8, 16):
        result = simulate_pipeline(schedule="1f1b", stages=4,
                                   microbatches=microbatches)
        if previous is not None:
            assert result.bubble_fraction < previous
        previous = result.bubble_fraction


# -------------------------------------------------------------- lowering


def test_lowering_emits_expected_rows_and_deps():
    timing = PipelineTiming(f_seconds=1.0, b_seconds=1.5, w_seconds=0.5,
                            comm_seconds=0.25, comm_bytes=1 << 20)
    schedule = build_schedule("zb", stages=3, microbatches=2, timing=timing)
    lowered = lower_schedule(schedule, timing)
    by_id = {row[9]: row for row in lowered.batch.rows}
    assert len(by_id) == lowered.op_count  # ids unique
    durations = {"F": 1.0, "B": 1.5, "W": 0.5}
    for row in lowered.batch.rows:
        name, kind, resource, duration, deps, phase = row[:6]
        assert all(dep in by_id for dep in deps)
        if phase in durations:
            assert duration == durations[phase]
            assert resource.startswith("stage")
        elif phase == "SEND":
            assert duration == 0.25
            assert resource.startswith("link")
            assert row[7] == 1 << 20  # payload_bytes rides on the link op
        elif phase == "RECV":
            assert duration == 0.0  # a barrier on the consuming stage clock
            assert resource.startswith("stage")


# ------------------------------------------- backend / executor byte-identity


def test_simulate_pipeline_heap_and_vector_serialize_identically():
    for family in FAMILIES:
        payloads = {
            scheduler: json.dumps(
                simulate_pipeline(
                    schedule=family, stages=4, microbatches=8,
                    policy=ExecutionPolicy(scheduler=scheduler),
                ).to_dict(),
                sort_keys=True,
            )
            for scheduler in ("heap", "vector")
        }
        assert payloads["heap"] == payloads["vector"]


def test_objects_and_batch_admission_paths_agree():
    results = {
        backend: simulate_pipeline(
            schedule="zb", stages=3, microbatches=4,
            policy=ExecutionPolicy(scheduler="heap", op_backend=backend),
        )
        for backend in ("batch", "objects")
    }
    assert results["batch"].resolved.op_backend == "batch"
    assert results["objects"].resolved.op_backend == "objects"
    assert (json.dumps(results["batch"].to_dict(), sort_keys=True)
            == json.dumps(results["objects"].to_dict(), sort_keys=True))


def _sweep_payload(policy: ExecutionPolicy) -> str:
    results = pipeline_sweep(
        {"schedule": list(FAMILIES), "microbatches": list(ACCEPTANCE_MICROBATCHES)},
        base={"stages": 4},
        policy=policy,
    )
    return json.dumps(sorted((list(key), value) for key, value in results.items()),
                      sort_keys=True)


def test_acceptance_sweep_is_byte_identical_across_executors_and_schedulers():
    """The ISSUE acceptance criterion: schedule x microbatch grid, identical
    bytes under serial/pool executors and heap/vector schedulers, with zb
    strictly under 1f1b at every grid point."""
    reference = None
    for executor, jobs in (("serial", 1), ("pool", 2)):
        for scheduler in ("heap", "vector"):
            policy = ExecutionPolicy(executor=executor, jobs=jobs,
                                     scheduler=scheduler, use_cache=False)
            payload = _sweep_payload(policy)
            if reference is None:
                reference = payload
            else:
                assert payload == reference, (
                    f"{executor}/{scheduler} diverged from the reference bytes"
                )
    grid = {tuple(key): value for key, value in json.loads(reference)}
    for microbatches in ACCEPTANCE_MICROBATCHES:
        zb = grid[("zb", microbatches)]
        baseline = grid[("1f1b", microbatches)]
        assert zb["bubble_fraction"] < baseline["bubble_fraction"]


# ------------------------------------------------------------------ policy


def test_pipeline_schedule_resolves_from_policy_when_omitted(monkeypatch):
    monkeypatch.delenv("REPRO_PIPELINE_SCHEDULE", raising=False)
    assert simulate_pipeline(stages=2, microbatches=2).schedule == "1f1b"
    with configure(pipeline_schedule="zb"):
        assert simulate_pipeline(stages=2, microbatches=2).schedule == "zb"
    monkeypatch.setenv("REPRO_PIPELINE_SCHEDULE", "gpipe")
    assert simulate_pipeline(stages=2, microbatches=2).schedule == "gpipe"
    # An explicit schedule always outranks the ambient policy.
    assert simulate_pipeline(schedule="zb", stages=2,
                             microbatches=2).schedule == "zb"


def test_run_pipeline_ignores_ambient_schedule_policy(monkeypatch):
    """The sweep worker's schedule is cache-keyed, so it must never default
    from the environment: same params => same result, whatever the env says."""
    monkeypatch.setenv("REPRO_PIPELINE_SCHEDULE", "gpipe")
    steered = run_pipeline(stages=2, microbatches=2)
    monkeypatch.delenv("REPRO_PIPELINE_SCHEDULE")
    clean = run_pipeline(stages=2, microbatches=2)
    assert steered["schedule"] == clean["schedule"] == "1f1b"
    assert json.dumps(steered, sort_keys=True) == json.dumps(clean, sort_keys=True)


# --------------------------------------------------------------------- CLI


def test_cli_pipeline_prints_metrics(capsys):
    assert main(["pipeline", "--schedule", "zb", "--stages", "4",
                 "--microbatches", "8"]) == 0
    output = capsys.readouterr().out
    assert "bubble_fraction" in output
    assert "makespan_s" in output


def test_cli_pipeline_json_round_trips(capsys):
    assert main(["pipeline", "--schedule", "zero-bubble", "--stages", "2",
                 "--microbatches", "4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schedule"] == "zb"  # alias resolved to the canonical name
    assert payload["stages"] == 2
    assert payload["op_count"] == 3 * 2 * 4 + 2 * 2 * 4
    assert 0.0 <= payload["bubble_fraction"] < 1.0


def test_cli_pipeline_list_schedules_covers_both_registries(capsys):
    assert main(["pipeline", "--list-schedules"]) == 0
    output = capsys.readouterr().out
    for name in (*FAMILIES, "zero-bubble", "zero3-offload",
                 "deep-optimizer-states", "twinflow"):
        assert name in output


def test_cli_sweep_pipeline_worker(tmp_path, capsys):
    assert main([
        "sweep", "--worker", "pipeline", "--strategies", "1f1b,zb",
        "--axis", "microbatches=2,4", "--cache-dir", str(tmp_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "bubble_fraction" in output
    assert "zb" in output and "1f1b" in output


def test_cli_sweep_defaults_to_pipeline_worker_via_scenario_family(
    monkeypatch, tmp_path, capsys
):
    monkeypatch.setenv("REPRO_SCENARIO_FAMILY", "pipeline")
    assert main(["sweep", "--axis", "microbatches=2", "--strategies", "zb",
                 "--cache-dir", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert "bubble_fraction" in output


def test_cli_config_reports_pipeline_fields(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_PIPELINE_SCHEDULE", "zb")
    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario_family"] == {"value": "offload", "source": "default"}
    assert payload["pipeline_schedule"] == {"value": "zb", "source": "env"}
