"""Tests for the synthetic corpus, tokenizer and dataloader."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.training.data import SyntheticCorpus, TokenDataset, WordTokenizer, make_dataloader


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(num_documents=20, words_per_document=50, vocabulary_size=200, seed=1)


@pytest.fixture(scope="module")
def tokenizer(corpus):
    return WordTokenizer(corpus, vocab_size=128)


def test_corpus_is_deterministic_given_seed():
    a = SyntheticCorpus(num_documents=5, words_per_document=10, seed=7)
    b = SyntheticCorpus(num_documents=5, words_per_document=10, seed=7)
    assert a.documents == b.documents
    c = SyntheticCorpus(num_documents=5, words_per_document=10, seed=8)
    assert a.documents != c.documents


def test_corpus_dimensions_and_validation(corpus):
    assert len(corpus) == 20
    assert all(len(doc.split()) == 50 for doc in corpus)
    with pytest.raises(ConfigurationError):
        SyntheticCorpus(num_documents=0)
    with pytest.raises(ConfigurationError):
        SyntheticCorpus(vocabulary_size=5)


def test_tokenizer_vocabulary_and_specials(tokenizer):
    assert tokenizer.vocab_size <= 128
    assert tokenizer.pad_id == 0
    ids = tokenizer.encode("unseenwordxyz", add_special=True)
    assert ids[0] == tokenizer.token_to_id[tokenizer.BOS]
    assert ids[-1] == tokenizer.token_to_id[tokenizer.EOS]
    assert ids[1] == tokenizer.token_to_id[tokenizer.UNK]


def test_tokenizer_encode_decode_roundtrip(corpus, tokenizer):
    text = corpus.documents[0]
    ids = tokenizer.encode(text, add_special=False)
    decoded = tokenizer.decode(ids)
    # Frequent words survive the round trip; rare ones may map to <unk>.
    original = text.split()
    recovered = decoded.split()
    assert len(original) == len(recovered)
    matches = sum(1 for a, b in zip(original, recovered) if a == b)
    assert matches / len(original) > 0.5


def test_token_dataset_chunks(corpus, tokenizer):
    dataset = TokenDataset.from_corpus(corpus, tokenizer, sequence_length=16)
    assert len(dataset) > 0
    tokens, targets = dataset[0]
    assert tokens.shape == (16,)
    assert targets.shape == (16,)
    np.testing.assert_array_equal(tokens[1:], targets[:-1])
    with pytest.raises(IndexError):
        dataset[len(dataset)]
    with pytest.raises(ConfigurationError):
        TokenDataset.from_corpus(corpus, tokenizer, sequence_length=1)


def test_dataloader_batches_and_determinism(corpus, tokenizer):
    dataset = TokenDataset.from_corpus(corpus, tokenizer, sequence_length=16)
    batches_a = list(make_dataloader(dataset, batch_size=4, seed=3))
    batches_b = list(make_dataloader(dataset, batch_size=4, seed=3))
    assert len(batches_a) == len(dataset) // 4
    for (xa, ya), (xb, yb) in zip(batches_a, batches_b):
        assert xa.shape == (4, 16)
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)
    shuffled_differently = list(make_dataloader(dataset, batch_size=4, seed=4))
    assert any(
        not np.array_equal(a[0], b[0]) for a, b in zip(batches_a, shuffled_differently)
    )


def test_dataloader_drop_last_behaviour(corpus, tokenizer):
    dataset = TokenDataset.from_corpus(corpus, tokenizer, sequence_length=16)
    batch_size = 7
    kept = list(make_dataloader(dataset, batch_size=batch_size, drop_last=False, shuffle=False))
    dropped = list(make_dataloader(dataset, batch_size=batch_size, drop_last=True, shuffle=False))
    if len(dataset) % batch_size:
        assert len(kept) == len(dropped) + 1
    with pytest.raises(ConfigurationError):
        list(make_dataloader(dataset, batch_size=0))
