"""End-to-end numeric training tests: the miniature model through the sharded optimizer."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.model.presets import TINY_MODELS
from repro.precision.loss_scaler import DynamicLossScaler
from repro.training.data import SyntheticCorpus, TokenDataset, WordTokenizer, make_dataloader
from repro.training.numeric import MiniTrainer


def make_batches(config, count, dp, seed=0):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(count * dp):
        tokens = rng.integers(0, config.vocab_size, size=(1, config.sequence_length))
        targets = rng.integers(0, config.vocab_size, size=(1, config.sequence_length))
        batches.append((tokens, targets))
    return batches


@pytest.fixture(scope="module")
def nano():
    return TINY_MODELS["nano"]


def test_trainer_wires_sharded_optimizer(nano):
    trainer = MiniTrainer(nano, strategy="deep-optimizer-states", data_parallel_degree=2, subgroup_size=4096, seed=0)
    description = trainer.describe()
    assert description["parameters"] == trainer.model.num_parameters()
    assert description["subgroups_per_rank"] >= 2
    assert trainer.optimizer.num_params == trainer.model.num_parameters()


def test_training_reduces_loss_on_repeated_batch(nano):
    trainer = MiniTrainer(nano, strategy="deep-optimizer-states", data_parallel_degree=1, subgroup_size=4096, seed=1)
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, nano.vocab_size, size=(2, nano.sequence_length))
    targets = rng.integers(0, nano.vocab_size, size=(2, nano.sequence_length))
    losses = [trainer.train_step([(tokens, targets)]) for _ in range(8)]
    assert losses[-1] < losses[0]


def test_strategies_produce_identical_training_trajectories(nano):
    """The headline correctness claim: offloading strategy does not change training."""
    batches = make_batches(nano, count=3, dp=2, seed=5)
    results = {}
    masters = {}
    for strategy in ("zero3-offload", "twinflow", "deep-optimizer-states"):
        trainer = MiniTrainer(nano, strategy=strategy, data_parallel_degree=2, subgroup_size=2048, seed=9)
        result = trainer.train(iter(batches), max_steps=3)
        results[strategy] = result.losses
        masters[strategy] = trainer.master_parameters()
    for strategy in ("twinflow", "deep-optimizer-states"):
        np.testing.assert_allclose(results[strategy], results["zero3-offload"], rtol=0, atol=0)
        np.testing.assert_array_equal(masters[strategy], masters["zero3-offload"])


def test_data_parallel_batch_count_validation(nano):
    trainer = MiniTrainer(nano, data_parallel_degree=2, subgroup_size=4096)
    with pytest.raises(ConfigurationError):
        trainer.train_step(make_batches(nano, count=1, dp=1))
    with pytest.raises(ConfigurationError):
        MiniTrainer(nano, data_parallel_degree=0)


def test_dynamic_loss_scaler_skips_overflowed_steps(nano):
    trainer = MiniTrainer(
        nano,
        data_parallel_degree=1,
        subgroup_size=4096,
        loss_scaler=DynamicLossScaler(scale=2.0**15, growth_interval=100),
        seed=2,
    )
    before = trainer.master_parameters().copy()
    # Inject an overflow by training on a batch and then corrupting the gradients via a
    # direct call with NaN-producing inputs is hard; instead drive the scaler directly.
    assert trainer.loss_scaler.update(found_overflow=True) is False
    rng = np.random.default_rng(3)
    tokens = rng.integers(0, nano.vocab_size, size=(1, nano.sequence_length))
    targets = rng.integers(0, nano.vocab_size, size=(1, nano.sequence_length))
    loss = trainer.train_step([(tokens, targets)])
    assert loss is not None
    assert not np.array_equal(before, trainer.master_parameters())


def test_training_on_synthetic_corpus_end_to_end(nano):
    corpus = SyntheticCorpus(num_documents=16, words_per_document=60, vocabulary_size=100, seed=4)
    tokenizer = WordTokenizer(corpus, vocab_size=nano.vocab_size)
    dataset = TokenDataset.from_corpus(corpus, tokenizer, sequence_length=nano.sequence_length)
    loader = make_dataloader(dataset, batch_size=2, seed=4)
    trainer = MiniTrainer(nano, strategy="deep-optimizer-states", data_parallel_degree=2, subgroup_size=4096, seed=6)
    result = trainer.train(loader, max_steps=4)
    assert result.steps == 4
    assert len(result.losses) == 4
    assert np.isfinite(result.final_loss)
    assert result.strategy == "deep-optimizer-states"


def test_fp16_master_sync_after_step(nano):
    trainer = MiniTrainer(nano, data_parallel_degree=1, subgroup_size=4096, seed=8)
    batches = make_batches(nano, count=1, dp=1, seed=8)
    trainer.train_step(batches)
    fp16 = trainer.optimizer.gathered_fp16_parameters()
    master = trainer.optimizer.master_parameters()
    np.testing.assert_array_equal(fp16, master.astype(np.float16))
    # The model itself trains on the FP16 weights.
    np.testing.assert_array_equal(trainer.model.flatten_parameters(), fp16.astype(np.float32))
