"""Tests for the simulated update-phase builders (Figure 5 semantics)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.scheduler import build_cpu_only_plan, build_update_plan
from repro.core.sim_executor import build_blocking_offload_update, build_interleaved_update
from repro.hardware.contention import HostContentionModel
from repro.sim.engine import SimEngine, standard_resources
from repro.sim.ops import OpKind

SUBGROUP = 100_000_000


def simulate(builder, plan, profile, num_subgroups=8, **kwargs):
    engine = SimEngine()
    standard_resources(engine)
    sizes = {i: SUBGROUP for i in range(num_subgroups)}
    ops = builder(engine, profile, plan, sizes, **kwargs)
    schedule = engine.run()
    ready = max(schedule.by_id(op).end for op in ops.params_ready_ops)
    return schedule, ops, ready


def test_blocking_baseline_serialises_cpu_and_h2d(h100_profile):
    plan = build_cpu_only_plan(8)
    schedule, ops, ready = simulate(build_blocking_offload_update, plan, h100_profile)
    # The phase length equals the sum of all per-subgroup costs (no overlap at all).
    per_subgroup = (
        SUBGROUP / h100_profile.cpu_update_pps
        + SUBGROUP / h100_profile.cpu_downscale_pps
        + SUBGROUP / (2 * h100_profile.pcie_pps)
    )
    assert ready == pytest.approx(8 * per_subgroup, rel=1e-3)
    assert len(ops.params_ready_ops) == 8
    assert schedule.busy_time("pcie.d2h") == 0.0


def test_blocking_baseline_with_static_residents_updates_them_on_gpu_first(h100_profile):
    plan = build_cpu_only_plan(8, static_residents={0, 1})
    schedule, ops, ready = simulate(build_blocking_offload_update, plan, h100_profile)
    gpu_updates = schedule.filter(kind=OpKind.GPU_UPDATE)
    cpu_updates = schedule.filter(kind=OpKind.CPU_UPDATE)
    assert len(gpu_updates) == 2
    assert len(cpu_updates) == 6
    # The CPU does not start before the GPU residents are done (observation (a) in §4.1).
    first_cpu_start = min(item.start for item in cpu_updates)
    last_gpu_end = max(item.end for item in gpu_updates)
    assert first_cpu_start >= last_gpu_end - 1e-9


def test_interleaved_overlaps_and_beats_blocking(h100_profile):
    blocking_plan = build_cpu_only_plan(8)
    _, _, blocking_ready = simulate(build_blocking_offload_update, blocking_plan, h100_profile)
    interleaved_plan = build_update_plan(8, 2)
    schedule, ops, interleaved_ready = simulate(
        build_interleaved_update, interleaved_plan, h100_profile
    )
    assert interleaved_ready < blocking_ready
    # Both PCIe directions are exercised (full duplex) and the GPU updates subgroups.
    assert schedule.busy_time("pcie.d2h") > 0
    assert schedule.busy_time("pcie.h2d") > 0
    assert len(schedule.filter(kind=OpKind.GPU_UPDATE)) == 4
    # 4 prefetches of 3 FP32 tensors each plus 4 FP16 parameter copies.
    assert ops.h2d_bytes == 4 * 3 * SUBGROUP * 4 + 4 * SUBGROUP * 2
    assert ops.d2h_bytes == 4 * 3 * SUBGROUP * 4


def test_interleaved_prefetch_overlaps_cpu_work(h100_profile):
    plan = build_update_plan(8, 2)
    schedule, _, _ = simulate(build_interleaved_update, plan, h100_profile)
    first_prefetch = min(item.start for item in schedule.filter(kind=OpKind.H2D))
    first_cpu_end = min(item.end for item in schedule.filter(kind=OpKind.CPU_UPDATE))
    # The first prefetch starts before the first CPU update has finished.
    assert first_prefetch < first_cpu_end


def test_interleaved_every_subgroup_has_a_completion_op(h100_profile):
    plan = build_update_plan(10, 3, static_residents={8, 9})
    _, ops, _ = simulate(build_interleaved_update, plan, h100_profile, num_subgroups=10)
    assert set(ops.per_subgroup_done) == set(range(10))
    assert len(ops.params_ready_ops) == 10


def test_contention_slows_interleaved_cpu_work(h100_profile):
    plan = build_update_plan(8, 2)
    _, _, fast = simulate(build_interleaved_update, plan, h100_profile, contention=None)
    _, _, derated = simulate(
        build_interleaved_update,
        plan,
        h100_profile,
        contention=HostContentionModel(cpu_efficiency_under_transfer=0.5, pcie_duplex_efficiency=0.9),
    )
    assert derated >= fast


def test_gradient_fetch_adds_prefetch_payload_when_grads_on_host(h100_profile):
    plan = build_update_plan(8, 2)
    _, on_gpu, _ = simulate(build_interleaved_update, plan, h100_profile, gradients_on_gpu=True)
    _, on_host, _ = simulate(build_interleaved_update, plan, h100_profile, gradients_on_gpu=False)
    assert on_host.h2d_bytes > on_gpu.h2d_bytes


def test_grad_ready_dependencies_delay_updates(h100_profile):
    engine = SimEngine()
    standard_resources(engine)
    from repro.sim.ops import SimOp

    blocker = SimOp("grad_producer", OpKind.GPU_COMPUTE, "gpu.compute", 5.0)
    engine.submit(blocker)
    plan = build_cpu_only_plan(2)
    sizes = {0: SUBGROUP, 1: SUBGROUP}
    ops = build_blocking_offload_update(
        engine, h100_profile, plan, sizes, grad_ready_ops={0: blocker.op_id, 1: blocker.op_id}
    )
    schedule = engine.run()
    first_update = min(item.start for item in schedule.filter(kind=OpKind.CPU_UPDATE))
    assert first_update >= 5.0
    assert max(schedule.by_id(op).end for op in ops.params_ready_ops) > 5.0


def test_size_mismatch_rejected(h100_profile):
    engine = SimEngine()
    standard_resources(engine)
    plan = build_update_plan(4, 2)
    with pytest.raises(ConfigurationError):
        build_interleaved_update(engine, h100_profile, plan, {0: SUBGROUP})
    with pytest.raises(ConfigurationError):
        build_blocking_offload_update(engine, h100_profile, plan, {i: 0 for i in range(4)})


def test_staged_subgroup_memory_deltas_balance(h100_profile):
    engine = SimEngine()
    standard_resources(engine)
    plan = build_update_plan(6, 2)
    sizes = {i: SUBGROUP for i in range(6)}
    build_interleaved_update(
        engine, h100_profile, plan, sizes, staged_subgroup_bytes=1_200_000_000
    )
    schedule = engine.run()
    total_delta = sum(item.op.gpu_mem_delta for item in schedule.ops)
    assert total_delta == 0  # every prefetched staging buffer is eventually flushed out
