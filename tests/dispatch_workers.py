"""Module-level worker callables for the dispatch tests.

These live in their own importable module (not inside a ``test_*`` file)
because the cluster tests ship them *by reference*: ``repro worker`` daemon
subprocesses import them by ``module:qualname``, so the module must be
importable from a plain ``PYTHONPATH`` that includes the ``tests`` directory.

Every worker is deterministic in its *value* — fault injection changes who
computes a scenario and how many times it is attempted, never what it returns.
That is the invariant the differential assertions lean on.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.runtime import ExecutionPolicy


def echo_params(**params):
    """Deterministic value derived from the scenario parameters alone.

    No ``hash()`` anywhere: string hashing is salted per process, and these
    values must be byte-identical across serial runs, forked pool processes
    and separately-launched worker daemons.
    """
    canonical = repr(sorted(params.items()))
    return {"params": dict(sorted(params.items())),
            "checksum": sum((index + 1) * ord(char)
                            for index, char in enumerate(canonical)) % 99991}


def slow_echo(x=0, delay=0.0):
    """Sleep ``delay`` seconds, then return a deterministic value."""
    time.sleep(delay)
    return {"x": x, "squared": x * x}


def policy_probe(**params):
    """Report the execution policy the worker-side resolution context yields."""
    resolved = ExecutionPolicy.resolve()
    return {"scheduler": resolved.scheduler,
            "auto_vector_threshold": resolved.auto_vector_threshold,
            "sources": sorted(set(resolved.sources.values()))}


# Fault injection is armed through the environment, not through scenario
# parameters: the daemons are launched with DISPATCH_TEST_DIR set while the
# serial baseline run leaves it unset, so both runs share *identical*
# scenario params — which is what lets the tests demand byte-identical
# SweepResult JSON even for the fault-injected sweep.


def _fault_marker(name):
    fault_dir = os.environ.get("DISPATCH_TEST_DIR", "")
    return Path(fault_dir) / name if fault_dir else None


def crash_daemon_once(x=0, crash_on=-1, delay=0.3):
    """Kill the whole worker process mid-task — once, for ``x == crash_on``.

    The first armed attempt drops a marker file and hard-exits the daemon
    (``os._exit``: no error frame, no cleanup — exactly what SIGKILL looks
    like to the coordinator).  Any later attempt finds the marker and
    completes normally, so the re-queued task succeeds on a surviving worker.
    """
    marker = _fault_marker(f"crashed-{x}")
    if x == crash_on and marker is not None and not marker.exists():
        marker.write_text("crashing")
        time.sleep(delay)  # hold the lease so the kill is genuinely mid-task
        os._exit(13)
    return {"x": x, "survived": True}


def always_crash_daemon(x=0):
    """Hard-exit the daemon on every armed attempt (retry-bound exhaustion)."""
    if os.environ.get("DISPATCH_TEST_DIR", ""):
        os._exit(13)
    return {"x": x}


def hang_until_marked(x=0, hang_on=-1, hang_time=60.0):
    """Go silent (sleep ``hang_time``) once, for ``x == hang_on``.

    Run on a daemon with heartbeats disabled this models a wedged worker: the
    lease expires, the coordinator re-queues, and the retry (marker present)
    completes promptly elsewhere.
    """
    marker = _fault_marker(f"hung-{x}")
    if x == hang_on and marker is not None and not marker.exists():
        marker.write_text("hanging")
        time.sleep(hang_time)
    return {"x": x, "done": True}


def always_raise(x=0):
    """Deterministic application failure: raises on every attempt."""
    raise ValueError(f"scenario x={x} is unprocessable")


def unpicklable_result(x=0):
    """Returns a value that cannot cross a process boundary (a lambda)."""
    return {"x": x, "closure": lambda: x}


def raise_until_marked(x=0, fail_on=-1):
    """Raise for ``x == fail_on`` until its marker exists, then succeed.

    Models a sweep interrupted by a failing scenario: the first run dies at
    ``fail_on`` (after earlier scenarios were streamed into the cache), the
    cause clears (the marker the failing attempt dropped), and the re-run
    resumes from the cache manifest.
    """
    marker = _fault_marker(f"fixed-{x}")
    if x == fail_on and marker is not None and not marker.exists():
        marker.write_text("failing")
        raise RuntimeError(f"scenario x={x} interrupted the sweep")
    return {"x": x, "cubed": x ** 3}
