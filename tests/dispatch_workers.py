"""Module-level worker callables for the dispatch tests.

These live in their own importable module (not inside a ``test_*`` file)
because the cluster tests ship them *by reference*: ``repro worker`` daemon
subprocesses import them by ``module:qualname``, so the module must be
importable from a plain ``PYTHONPATH`` that includes the ``tests`` directory.

Every worker is deterministic: same params, same value, every attempt, every
process.  Fault injection is *not* baked into the workers any more — it is
declared on the execution policy as a ``fault:...`` middleware spec (see
:mod:`repro.middleware`) and fires on whichever side executes the task.
Because the fault lives in the chain and the value lives in the worker, an
armed cluster run and an unarmed serial baseline share identical scenario
params *and* identical worker code — which is what lets the tests demand
byte-identical SweepResult JSON even for fault-injected sweeps.
"""

from __future__ import annotations

import time

from repro.runtime import ExecutionPolicy


def echo_params(**params):
    """Deterministic value derived from the scenario parameters alone.

    No ``hash()`` anywhere: string hashing is salted per process, and these
    values must be byte-identical across serial runs, forked pool processes
    and separately-launched worker daemons.
    """
    canonical = repr(sorted(params.items()))
    return {"params": dict(sorted(params.items())),
            "checksum": sum((index + 1) * ord(char)
                            for index, char in enumerate(canonical)) % 99991}


def slow_echo(x=0, delay=0.0):
    """Sleep ``delay`` seconds, then return a deterministic value."""
    time.sleep(delay)
    return {"x": x, "squared": x * x}


def policy_probe(**params):
    """Report the execution policy the worker-side resolution context yields."""
    resolved = ExecutionPolicy.resolve()
    return {"scheduler": resolved.scheduler,
            "auto_vector_threshold": resolved.auto_vector_threshold,
            "sources": sorted(set(resolved.sources.values()))}


def survivor(x=0):
    """Plain deterministic worker for the crash/hang fault tests.

    The old fault workers decided *themselves* when to crash or wedge (armed
    through the environment).  This one never does: the crash, hang or raise
    is injected by a ``fault:...`` middleware around it, so the worker body is
    identical on every attempt and in the serial baseline.
    """
    return {"x": x, "survived": True}


def cubed(x=0):
    """Deterministic arithmetic worker for the interrupted-sweep resume test."""
    return {"x": x, "cubed": x ** 3}


def always_raise(x=0):
    """Deterministic application failure: raises on every attempt."""
    raise ValueError(f"scenario x={x} is unprocessable")


def unpicklable_result(x=0):
    """Returns a value that cannot cross a process boundary (a lambda)."""
    return {"x": x, "closure": lambda: x}
