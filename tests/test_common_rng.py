"""Tests for deterministic RNG helpers."""

import numpy as np

from repro.common.rng import DEFAULT_SEED, make_rng, spawn


def test_same_seed_same_stream_is_deterministic():
    a = make_rng(7, stream="data").normal(size=16)
    b = make_rng(7, stream="data").normal(size=16)
    np.testing.assert_array_equal(a, b)


def test_different_streams_differ():
    a = make_rng(7, stream="weights").normal(size=16)
    b = make_rng(7, stream="data").normal(size=16)
    assert not np.allclose(a, b)


def test_default_seed_used_when_none():
    a = make_rng(None).integers(0, 1000, size=8)
    b = make_rng(DEFAULT_SEED).integers(0, 1000, size=8)
    np.testing.assert_array_equal(a, b)


def test_spawn_produces_independent_generators():
    children = spawn(make_rng(3), 4)
    assert len(children) == 4
    draws = [child.normal(size=8) for child in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.allclose(draws[i], draws[j])
