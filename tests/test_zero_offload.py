"""Tests for the offloading configuration (static resident selection in particular)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.zero.offload import DEFAULT_SUBGROUP_SIZE, OffloadConfig, OffloadDevice


def test_defaults_match_paper_settings():
    config = OffloadConfig()
    assert config.device == OffloadDevice.CPU
    assert config.subgroup_size == DEFAULT_SUBGROUP_SIZE == 100_000_000
    assert config.pin_memory
    assert config.offload_enabled


def test_disabled_offload_keeps_everything_on_gpu():
    config = OffloadConfig(device=OffloadDevice.NONE)
    assert not config.offload_enabled
    assert config.static_resident_count(10) == 10


def test_static_resident_count_quantised_by_subgroups():
    config = OffloadConfig(static_gpu_fraction=0.2)
    assert config.static_resident_count(10) == 2
    assert config.static_resident_count(4) == 0  # the paper's 3B/1B-subgroup example
    assert config.static_resident_count(0) == 0
    with pytest.raises(ConfigurationError):
        config.static_resident_count(-1)


def test_static_residents_first_for_twinflow_last_for_dos():
    twinflow_style = OffloadConfig(static_gpu_fraction=0.25, static_residents_at_end=False)
    dos_style = OffloadConfig(static_gpu_fraction=0.25, static_residents_at_end=True)
    assert twinflow_style.static_resident_indices(8) == frozenset({0, 1})
    assert dos_style.static_resident_indices(8) == frozenset({6, 7})
    assert OffloadConfig(static_gpu_fraction=0.0).static_resident_indices(8) == frozenset()


def test_validation():
    with pytest.raises(ConfigurationError):
        OffloadConfig(subgroup_size=0)
    with pytest.raises(ConfigurationError):
        OffloadConfig(static_gpu_fraction=1.5)
