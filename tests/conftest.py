"""Shared fixtures for the test suite, plus pinned hypothesis profiles."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Allow running the tests from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# Hypothesis profiles.  CI runs with HYPOTHESIS_PROFILE=ci: ``derandomize=True``
# pins the generated examples to the test code itself, so a shared-runner rerun
# can never fail on a fresh random seed that no developer can reproduce, and the
# suite never trips deadline/health checks on noisy-runner timing.  Local runs
# keep the default randomized exploration (that is where new counterexamples
# should be found — and shrunk failures replay from the local example database).
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.get_profile("default"))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.hardware.presets import JLSE_H100_NODE, LAMBDA_V100_NODE
from repro.hardware.throughput import ThroughputProfile
from repro.model.presets import TINY_MODELS
from repro.optim import AdamConfig, AdamRule


@pytest.fixture
def h100_machine():
    """The paper's primary testbed preset."""
    return JLSE_H100_NODE


@pytest.fixture
def v100_machine():
    """The paper's secondary (performance-model validation) testbed preset."""
    return LAMBDA_V100_NODE


@pytest.fixture
def h100_profile():
    """Per-process throughput profile of the H100 testbed."""
    return ThroughputProfile.from_machine(JLSE_H100_NODE)


@pytest.fixture
def paper_v100_profile():
    """The throughput numbers the paper reports for its V100 machine."""
    return ThroughputProfile.from_paper_v100()


@pytest.fixture
def nano_config():
    """Smallest miniature transformer configuration."""
    return TINY_MODELS["nano"]


@pytest.fixture
def tiny_config():
    """Small (but multi-layer, multi-head) miniature transformer configuration."""
    return TINY_MODELS["tiny-1M"]


@pytest.fixture
def adam_rule():
    """Default Adam rule used across the numeric tests."""
    return AdamRule(AdamConfig(learning_rate=1e-3))


@pytest.fixture
def rng():
    """Deterministic NumPy generator for test data."""
    return np.random.default_rng(1234)
