"""Shape-compiled scenario batching: keys, stacked schedules, sweep equality.

Three layers of guarantees:

* **key layer** — :func:`~repro.sim.shapebatch.shape_key` fingerprints exactly
  the scheduling topology: duration and release-time *value* changes never
  change a key; resource, dependency-edge or release-*structure* changes
  always do; drawing the same shape from a different stretch of the global op
  id counter does not.
* **kernel layer** — :func:`~repro.sim.shapebatch.schedule_group` over one
  compiled :func:`~repro.sim.shapebatch.compile_plan` must be byte-identical,
  scenario for scenario, to solo runs of both scheduler kernels (vector and
  heap) on random same-shape batches.
* **sweep layer** — ``SweepRunner(sweep_mode="batch")`` must return scenario
  values byte-identical (as JSON) to ``sweep_mode="scenario"``, across serial
  and pool executors, on fig14-style shared-shape grids and fig16-style mixed
  grids, and its cache entries must be interchangeable with per-scenario runs.
"""

import json
import random

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.base import run_training
from repro.runtime import ExecutionPolicy
from repro.sim.engine import SimEngine
from repro.sim.opbatch import OpBatch
from repro.sim.ops import OpKind
from repro.sim.shapebatch import (
    ScenarioColumn,
    ShapeKey,
    compile_plan,
    scenario_column,
    schedule_group,
    shape_key,
)
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.batching import is_batchable, run_scenario_group

RESOURCES = ("cpu", "gpu", "link", "pcie.h2d", "pcie.d2h")

# Small-but-real training grid: 7B at data-parallel 4 resolves in milliseconds
# while still exercising the full prepare/schedule/report pipeline.
TRAIN_BASE = {"model": "7B", "strategy": "deep-optimizer-states", "iterations": 2}


# ------------------------------------------------------------------ fixtures


def random_topology(rng: random.Random, size: int) -> list[tuple]:
    """(resource, dep positions, has release) per op — the durations-free shape."""
    topology = []
    for index in range(size):
        count = rng.randint(0, min(3, index))
        deps = tuple(sorted(rng.sample(range(index), count))) if count else ()
        topology.append((rng.choice(RESOURCES), deps, rng.random() < 0.3))
    return topology


def batch_from(topology, rng: random.Random) -> OpBatch:
    """One scenario of a topology: same shape, freshly drawn float inputs."""
    batch = OpBatch()
    ids: list[int] = []
    for index, (resource, deps, has_release) in enumerate(topology):
        op_id = batch.add_op(
            f"op{index}", OpKind.GPU_COMPUTE, resource, rng.random() * 3,
            tuple(ids[position] for position in deps),
            phase=f"phase{index % 3}", subgroup=index % 5,
            not_before=rng.uniform(0.1, 2.0) if has_release else 0.0,
        )
        ids.append(op_id)
    return batch


def _engine() -> SimEngine:
    engine = SimEngine()
    for name in RESOURCES:
        engine.add_resource(name)
    return engine


def _triples(schedule) -> list[tuple[int, float, float]]:
    return [(item.op.op_id, item.start, item.end) for item in schedule.ops]


def _projection(result) -> str:
    """The JSON identity a sweep mode must preserve (params, hash, value)."""
    return json.dumps(
        [
            {key: scenario[key] for key in ("params", "config_hash", "value")}
            for scenario in result.to_dict()["scenarios"]
        ],
        sort_keys=True,
    )


def plain_worker(*, x: int = 0) -> int:
    """A module-level worker with no batching adapter."""
    return x * 2


# ------------------------------------------------------------------ shape keys


def test_duration_changes_never_change_the_key():
    topology = random_topology(random.Random(7), 40)
    keys = {shape_key(batch_from(topology, random.Random(seed))) for seed in range(5)}
    assert len(keys) == 1


def test_release_time_values_do_not_enter_the_key():
    batch_a, batch_b = OpBatch(), OpBatch()
    for batch, release in ((batch_a, 0.5), (batch_b, 2.5)):
        first = batch.add_op("a", OpKind.GPU_COMPUTE, "gpu", 1.0, ())
        batch.add_op("b", OpKind.CPU_UPDATE, "cpu", 2.0, (first,), not_before=release)
    assert shape_key(batch_a) == shape_key(batch_b)


def test_release_time_structure_does_enter_the_key():
    batch_a, batch_b = OpBatch(), OpBatch()
    for batch, release in ((batch_a, 0.5), (batch_b, 0.0)):
        first = batch.add_op("a", OpKind.GPU_COMPUTE, "gpu", 1.0, ())
        batch.add_op("b", OpKind.CPU_UPDATE, "cpu", 2.0, (first,), not_before=release)
    assert shape_key(batch_a) != shape_key(batch_b)


def test_resource_and_dependency_changes_change_the_key():
    def build(resource: str, with_dep: bool) -> OpBatch:
        batch = OpBatch()
        first = batch.add_op("a", OpKind.GPU_COMPUTE, "gpu", 1.0, ())
        batch.add_op("b", OpKind.CPU_UPDATE, resource, 2.0,
                     (first,) if with_dep else ())
        return batch

    base = shape_key(build("cpu", True))
    assert shape_key(build("link", True)) != base
    assert shape_key(build("cpu", False)) != base


def test_keys_are_invariant_to_the_global_id_offset():
    topology = random_topology(random.Random(11), 25)
    first = batch_from(topology, random.Random(0))
    OpBatch().add_op("burn", OpKind.GPU_COMPUTE, "gpu", 1.0, ())  # shift the counter
    second = batch_from(topology, random.Random(0))
    assert first.rows[0][9] != second.rows[0][9]
    assert shape_key(first) == shape_key(second)


def test_shape_key_is_structured():
    topology = random_topology(random.Random(3), 10)
    key = shape_key(batch_from(topology, random.Random(0)))
    assert isinstance(key, ShapeKey)
    assert key.op_count == 10
    assert shape_key(OpBatch()).op_count == 0


def test_training_scenarios_differing_in_knob_values_share_a_key():
    from repro.experiments.base import _prepare_training_case

    cases = [
        _prepare_training_case(**TRAIN_BASE, cpu_cores_per_gpu=cores)
        for cores in (4, 16)
    ]
    assert shape_key(cases[0].batch) == shape_key(cases[1].batch)
    assert cases[0].salt == cases[1].salt


# ----------------------------------------------------------- stacked schedules


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_stacked_schedules_match_solo_kernels_bit_for_bit(seed):
    topology = random_topology(random.Random(seed), 60)
    batches = [batch_from(topology, random.Random(100 + index)) for index in range(6)]
    keys = {shape_key(batch) for batch in batches}
    assert len(keys) == 1

    plan = compile_plan(batches[0], RESOURCES)
    stacked = schedule_group(plan, [scenario_column(batch) for batch in batches])
    engine = _engine()
    for index, batch in enumerate(batches):
        stacked_triples = _triples(stacked.schedule_for(index, rows=batch.rows))
        assert stacked_triples == _triples(engine.run_vector(batch))
        assert stacked_triples == _triples(engine.run_batch(batch))


def test_stacked_columns_are_exact_per_scenario():
    topology = random_topology(random.Random(5), 30)
    batches = [batch_from(topology, random.Random(index)) for index in range(4)]
    plan = compile_plan(batches[0], RESOURCES)
    stacked = schedule_group(plan, [scenario_column(batch) for batch in batches])
    assert stacked.num_scenarios == 4
    engine = _engine()
    for index, batch in enumerate(batches):
        solo = engine.run_vector(batch)
        starts, ends = stacked.columns_for(index)
        for row_index, op_id in enumerate((plan.rel_ids + batch.rows[0][9]).tolist()):
            assert starts[row_index] == solo.op_start(op_id)
            assert ends[row_index] == solo.op_end(op_id)


def test_schedule_group_rejects_mismatched_columns():
    topology = random_topology(random.Random(9), 12)
    batch = batch_from(topology, random.Random(0))
    other = batch_from(random_topology(random.Random(10), 13), random.Random(0))
    plan = compile_plan(batch, RESOURCES)
    with pytest.raises(ConfigurationError, match="group batches by shape_key"):
        schedule_group(plan, [scenario_column(batch), scenario_column(other)])
    with pytest.raises(ConfigurationError, match="at least one"):
        schedule_group(plan, [])


def test_schedule_for_requires_rows():
    topology = random_topology(random.Random(4), 8)
    batch = batch_from(topology, random.Random(0))
    plan = compile_plan(batch, RESOURCES)
    stacked = schedule_group(plan, [scenario_column(batch)])
    with pytest.raises(ConfigurationError, match="rows"):
        stacked.schedule_for(0)
    stacked.rows = batch.rows
    assert stacked.schedule_for(0).makespan > 0


def test_scenario_column_detaches_the_float_inputs():
    batch = OpBatch()
    first = batch.add_op("a", OpKind.GPU_COMPUTE, "gpu", 1.5, ())
    batch.add_op("b", OpKind.CPU_UPDATE, "cpu", 2.5, (first,), not_before=0.75)
    column = scenario_column(batch)
    assert isinstance(column, ScenarioColumn)
    assert column.durations.tolist() == [1.5, 2.5]
    assert column.release_times == {first + 1: 0.75}
    assert column.first_id == first


# ------------------------------------------------------------ sweep equality


def _grid(axis_values) -> SweepSpec:
    return SweepSpec.build({"cpu_cores_per_gpu": list(axis_values)}, TRAIN_BASE)


def test_batch_sweep_is_byte_identical_to_scenario_sweep():
    spec = _grid(range(2, 8))
    scenario = SweepRunner(run_training, use_cache=False, sweep_mode="scenario").run(spec)
    batch = SweepRunner(run_training, use_cache=False, sweep_mode="batch").run(spec)
    assert _projection(batch) == _projection(scenario)


def test_mixed_strategy_grid_splits_into_groups_and_stays_identical():
    # fig16-style: two strategies = two DAG shapes in one grid, plus an OOM-free
    # knob axis; every scenario must still match its per-scenario twin.
    spec = SweepSpec.build(
        {
            "strategy": ["deep-optimizer-states", "zero3-offload"],
            "cpu_cores_per_gpu": [4, 8],
        },
        {"model": "7B", "iterations": 2},
    )
    scenario = SweepRunner(run_training, use_cache=False, sweep_mode="scenario").run(spec)
    batch = SweepRunner(run_training, use_cache=False, sweep_mode="batch").run(spec)
    assert _projection(batch) == _projection(scenario)


def test_pool_batch_sweep_matches_serial(tmp_path):
    spec = _grid(range(2, 6))
    serial = SweepRunner(run_training, use_cache=False, sweep_mode="batch").run(spec)
    pool = SweepRunner(
        run_training, jobs=2, use_cache=False, sweep_mode="batch"
    ).run(spec)
    assert _projection(pool) == _projection(serial)


def test_batch_cache_entries_serve_scenario_runs(tmp_path):
    spec = _grid(range(2, 6))
    first = SweepRunner(
        run_training, use_cache=True, cache_dir=tmp_path, sweep_mode="batch"
    ).run(spec)
    total = len(list(spec.scenarios()))
    assert first.cache_misses == total
    second = SweepRunner(
        run_training, use_cache=True, cache_dir=tmp_path, sweep_mode="scenario"
    ).run(spec)
    assert second.cache_hits == total
    assert second.cache_misses == 0
    assert _projection(second) == _projection(first)


def test_auto_mode_batches_training_and_leaves_plain_workers_alone():
    assert is_batchable(run_training)
    assert not is_batchable(plain_worker)
    runner = SweepRunner(run_training, use_cache=False)
    assert runner.sweep_mode == "auto"
    assert runner._effective_sweep_mode() == "batch"
    plain = SweepRunner(plain_worker, use_cache=False)
    assert plain._effective_sweep_mode() == "scenario"
    result = plain.run(SweepSpec.build({"x": [1, 2, 3]}, None))
    assert [record.value for record in result.records] == [2, 4, 6]


def test_explicit_batch_mode_without_adapter_raises():
    runner = SweepRunner(plain_worker, use_cache=False, sweep_mode="batch")
    with pytest.raises(ConfigurationError, match="no batching adapter"):
        runner.run(SweepSpec.build({"x": [1]}, None))


def test_sweep_mode_is_validated():
    with pytest.raises(ConfigurationError, match="unknown sweep mode"):
        ExecutionPolicy.resolve(sweep_mode="bogus")
    assert ExecutionPolicy.resolve(sweep_mode="batch").sweep_mode == "batch"


def test_sweep_mode_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_MODE", "scenario")
    runner = SweepRunner(run_training, use_cache=False)
    assert runner.sweep_mode == "scenario"
    assert runner._effective_sweep_mode() == "scenario"


def test_group_trampoline_falls_back_without_an_adapter():
    values = run_scenario_group(
        worker=f"{plain_worker.__module__}:{plain_worker.__qualname__}",
        scenarios=[{"x": 5}, {"x": 7}],
    )
    assert values == [10, 14]


def test_batch_mode_emits_one_progress_event_per_scenario():
    events = []
    spec = _grid(range(2, 6))
    SweepRunner(
        run_training, use_cache=False, sweep_mode="batch", progress=events.append
    ).run(spec)
    assert [event["completed"] for event in events] == [1, 2, 3, 4]
    assert all(event["total"] == 4 for event in events)
    assert all(not event["cached"] for event in events)
    assert all(event["wall_time"] >= 0.0 for event in events)
