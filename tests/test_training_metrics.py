"""Tests for iteration breakdowns and training reports."""

import pytest

from repro.common.errors import ConfigurationError
from repro.training.metrics import (
    IterationBreakdown,
    TrainingReport,
    average_breakdown,
    format_table,
)


def make_breakdown(f=1.0, b=2.0, u=3.0):
    return IterationBreakdown(forward_seconds=f, backward_seconds=b, update_seconds=u)


def test_total_and_dict():
    breakdown = make_breakdown()
    assert breakdown.total_seconds == 6.0
    data = breakdown.as_dict()
    assert data["total_s"] == 6.0
    assert set(data) == {"forward_s", "backward_s", "update_s", "total_s"}


def test_average_breakdown():
    mean = average_breakdown([make_breakdown(1, 1, 1), make_breakdown(3, 3, 3)])
    assert mean.forward_seconds == 2.0
    assert mean.total_seconds == 6.0
    with pytest.raises(ConfigurationError):
        average_breakdown([])


def make_report(iteration_seconds=2.0, warmup=1, count=4, oom=False):
    breakdowns = [make_breakdown(u=iteration_seconds - 3.0) for _ in range(count)]
    return TrainingReport(
        job={"model": "20B", "strategy": "test"},
        breakdowns=breakdowns,
        warmup_iterations=warmup,
        requested_iterations=count,
        update_throughput_pps=10e9,
        achieved_tflops=50.0,
        end_to_end_seconds=iteration_seconds * count,
        oom=oom,
    )


def test_report_steady_state_skips_warmup():
    report = make_report(iteration_seconds=5.0)
    assert report.iteration_seconds == pytest.approx(5.0)
    assert report.steady_state.update_seconds == pytest.approx(2.0)


def test_speedup_over():
    fast = make_report(iteration_seconds=4.0)
    slow = make_report(iteration_seconds=8.0)
    assert fast.speedup_over(slow) == pytest.approx(2.0)
    oom = make_report(oom=True)
    with pytest.raises(ConfigurationError):
        fast.speedup_over(oom)


def test_as_row_contains_metrics_or_oom_flag():
    row = make_report().as_row()
    assert row["update_throughput_bpps"] == 10.0
    assert row["tflops"] == 50.0
    assert row["oom"] is False
    oom_row = make_report(oom=True).as_row()
    assert oom_row["oom"] is True
    assert "tflops" not in oom_row


def test_format_table_alignment_and_missing_columns():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert len(lines) == 4
    assert format_table([]) == "(no rows)"
    partial = format_table(rows, columns=["a", "missing"])
    assert "missing" in partial
