"""Tests for the per-rank memory footprint and OOM pre-flight checks."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import GIB
from repro.hardware.presets import JLSE_H100_NODE
from repro.model.footprint import build_memory_plan, build_rank_footprint, check_fits
from repro.model.presets import MODEL_PRESETS


def footprint_20b(**overrides):
    defaults = dict(
        data_parallel_degree=4,
        microbatch_size=1,
        activation_checkpointing=True,
        subgroup_size=100_000_000,
    )
    defaults.update(overrides)
    return build_rank_footprint(MODEL_PRESETS["20B"], **defaults)


def test_rank_parameters_are_ceiling_of_even_split():
    footprint = footprint_20b()
    total = MODEL_PRESETS["20B"].num_parameters()
    assert footprint.rank_parameters == -(-total // 4)


def test_fp16_parameter_bytes_match_rank_share():
    footprint = footprint_20b()
    assert footprint.fp16_parameter_bytes == footprint.rank_parameters * 2


def test_host_bytes_cover_offloaded_optimizer_and_gradients():
    footprint = footprint_20b()
    assert footprint.host_optimizer_bytes == footprint.rank_parameters * 12
    assert footprint.host_gradient_bytes == footprint.rank_parameters * 4


def test_static_gpu_fraction_moves_state_from_host_to_gpu():
    none = footprint_20b()
    half = footprint_20b(gpu_resident_optimizer_fraction=0.5)
    assert half.gpu_resident_optimizer_bytes > 0
    assert half.host_optimizer_bytes < none.host_optimizer_bytes
    assert (
        half.gpu_resident_optimizer_bytes + half.host_optimizer_bytes
        == none.gpu_resident_optimizer_bytes + none.host_optimizer_bytes
    )


def test_staged_subgroup_costs_about_1_2_gb():
    footprint = footprint_20b(stage_subgroup_on_gpu=True)
    # The paper: a 100M-parameter subgroup needs 3 x 4 bytes x 100M ~= 1.2 GB on the GPU.
    assert footprint.staged_subgroup_bytes == pytest.approx(1.2e9, rel=0.01)


def test_activation_checkpointing_reduces_peak():
    with_ckpt = footprint_20b(activation_checkpointing=True)
    without = footprint_20b(activation_checkpointing=False, microbatch_size=1)
    assert with_ckpt.gpu_peak_bytes() < without.gpu_peak_bytes()


def test_update_phase_bytes_much_smaller_than_peak():
    footprint = footprint_20b()
    assert footprint.gpu_update_phase_bytes() < footprint.gpu_peak_bytes()


def test_retained_gradient_fraction_increases_gradient_bytes():
    none = footprint_20b()
    retained = footprint_20b(gpu_scheduled_gradient_fraction=0.5)
    assert retained.fp16_gradient_bytes > none.fp16_gradient_bytes
    with pytest.raises(ConfigurationError):
        footprint_20b(gpu_scheduled_gradient_fraction=1.5)


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigurationError):
        footprint_20b(data_parallel_degree=0)
    with pytest.raises(ConfigurationError):
        footprint_20b(gpu_resident_optimizer_fraction=2.0)
    with pytest.raises(ConfigurationError):
        footprint_20b(subgroup_size=0)


def test_check_fits_passes_for_paper_configuration():
    footprint = footprint_20b(stage_subgroup_on_gpu=True)
    check_fits(footprint, JLSE_H100_NODE)


def test_check_fits_raises_gpu_oom_for_large_microbatch():
    footprint = footprint_20b(microbatch_size=16, stage_subgroup_on_gpu=True)
    with pytest.raises(OutOfMemoryError):
        check_fits(footprint, JLSE_H100_NODE)


def test_check_fits_raises_host_oom_when_dram_too_small():
    # LLaMA-33B-like: the paper notes its optimizer state exceeds the 512 GB of DRAM.
    footprint = build_rank_footprint(
        MODEL_PRESETS["20B"],
        data_parallel_degree=1,
        microbatch_size=1,
        activation_checkpointing=True,
    )
    tiny_host = JLSE_H100_NODE
    object.__setattr__  # silence linters about frozen dataclasses; we build a new one instead
    from dataclasses import replace
    from repro.hardware.specs import HostMemorySpec

    small = replace(tiny_host, host_memory=HostMemorySpec(capacity_gib=64.0))
    with pytest.raises(OutOfMemoryError):
        check_fits(footprint, small, data_parallel_degree=1)


def test_memory_plan_mirrors_footprint():
    footprint = footprint_20b(stage_subgroup_on_gpu=True)
    plan = build_memory_plan(footprint)
    assert plan.fp16_parameters == footprint.fp16_parameter_bytes
    assert plan.staged_subgroup == footprint.staged_subgroup_bytes
    assert plan.host_total() == footprint.host_bytes()
    assert plan.gpu_total(include_activations=True, include_staged_subgroup=True) >= (
        footprint.fp16_parameter_bytes
    )


def test_20b_fp16_share_per_rank_about_11_gib():
    footprint = footprint_20b()
    assert footprint.fp16_parameter_bytes / GIB == pytest.approx(10.2, rel=0.1)
