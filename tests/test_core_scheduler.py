"""Tests for Algorithm 1's update plan construction and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SchedulingError
from repro.core.scheduler import (
    AssignmentReason,
    UpdatePlan,
    UpdateTarget,
    build_cpu_only_plan,
    build_update_plan,
)


def test_stride_2_schedules_every_alternate_subgroup_on_gpu():
    plan = build_update_plan(8, 2)
    assert plan.gpu_indices() == [1, 3, 5, 7]
    assert plan.cpu_indices() == [0, 2, 4, 6]
    assert plan.gpu_fraction() == pytest.approx(0.5)


def test_stride_3_matches_paper_figure5_example():
    """Figure 5: 8 subgroups, 'for every two subgroups updated on the CPU, one on the GPU'."""
    plan = build_update_plan(8, 3)
    assert plan.gpu_indices() == [2, 5]
    assert plan.gpu_fraction() == pytest.approx(0.25)
    dynamic = plan.dynamic_gpu_indices()
    assert dynamic == [2, 5]


def test_static_residents_always_on_gpu_even_off_stride():
    plan = build_update_plan(8, 2, static_residents={6, 7})
    assert 6 in plan.gpu_indices() and 7 in plan.gpu_indices()
    assert plan.assignments[6].reason == AssignmentReason.STATIC_RESIDENT
    assert plan.assignments[7].reason == AssignmentReason.STATIC_RESIDENT
    # Static residents do not count as dynamically staged subgroups.
    assert 7 not in plan.dynamic_gpu_indices()


def test_cpu_only_plan_matches_baselines():
    zero3 = build_cpu_only_plan(10)
    assert zero3.gpu_indices() == []
    assert zero3.gpu_fraction() == 0.0
    twinflow = build_cpu_only_plan(10, static_residents={0, 1})
    assert twinflow.gpu_indices() == [0, 1]
    assert twinflow.dynamic_gpu_indices() == []


def test_prev_next_on_gpu_helpers():
    plan = build_update_plan(10, 3)
    assert plan.dynamic_gpu_indices() == [2, 5, 8]
    assert plan.prev_on_gpu(5) == 2
    assert plan.prev_on_gpu(2) is None
    assert plan.next_on_gpu(3) == 5
    assert plan.next_on_gpu(9) is None


def test_target_of_and_describe():
    plan = build_update_plan(4, 2)
    assert plan.target_of(1) == UpdateTarget.GPU
    assert plan.target_of(0) == UpdateTarget.CPU
    description = plan.describe()
    assert description["num_subgroups"] == 4
    assert description["stride"] == 2


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigurationError):
        build_update_plan(-1, 2)
    with pytest.raises(ConfigurationError):
        build_update_plan(4, 0)
    with pytest.raises(ConfigurationError):
        build_update_plan(4, 2, static_residents={5})


def test_validate_detects_corrupted_plans():
    plan = build_update_plan(6, 2)
    # Tamper with an assignment: move a stride hit to the CPU.
    corrupted = UpdatePlan(
        assignments=tuple(
            item if item.index != 1 else type(item)(1, UpdateTarget.CPU, AssignmentReason.CPU_DEFAULT)
            for item in plan.assignments
        ),
        stride=2,
    )
    with pytest.raises(SchedulingError):
        corrupted.validate()


def test_empty_plan_is_valid():
    plan = build_update_plan(0, 2)
    assert plan.num_subgroups == 0
    assert plan.gpu_fraction() == 0.0


@settings(max_examples=80, deadline=None)
@given(
    st.integers(1, 120),
    st.integers(1, 10),
    st.data(),
)
def test_plan_invariants_hold_for_random_inputs(num_subgroups, stride, data):
    residents = frozenset(
        data.draw(
            st.sets(st.integers(0, num_subgroups - 1), max_size=min(8, num_subgroups))
        )
    )
    plan = build_update_plan(num_subgroups, stride, residents)
    plan.validate()
    # Every subgroup appears exactly once.
    assert sorted(plan.gpu_indices() + plan.cpu_indices()) == list(range(num_subgroups))
    # Static residents are always on the GPU.
    assert residents <= set(plan.gpu_indices())
    # Dynamic GPU share equals the stride hits that are not residents.
    expected_dynamic = [
        i for i in range(num_subgroups) if (i + 1) % stride == 0 and i not in residents
    ]
    assert plan.dynamic_gpu_indices() == expected_dynamic
