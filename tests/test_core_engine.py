"""Tests for the DeepOptimizerStates middleware facade and its configuration."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.engine import DeepOptimizerStates, DeepOptimizerStatesConfig
from repro.core.numeric_executor import InterleavedNumericExecutor
from repro.zero.offload import OffloadDevice
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer
from repro.optim import AdamRule


def test_config_defaults_and_validation():
    config = DeepOptimizerStatesConfig()
    assert config.enabled
    assert config.subgroup_size == 100_000_000
    assert config.update_stride == 0  # automatic, from Equation 1
    with pytest.raises(ConfigurationError):
        DeepOptimizerStatesConfig(subgroup_size=0)
    with pytest.raises(ConfigurationError):
        DeepOptimizerStatesConfig(update_stride=-1)
    with pytest.raises(ConfigurationError):
        DeepOptimizerStatesConfig(min_update_stride=4, max_update_stride=2)
    with pytest.raises(ConfigurationError):
        DeepOptimizerStatesConfig(static_gpu_fraction=1.2)


def test_disabled_config_rejected():
    with pytest.raises(ConfigurationError):
        DeepOptimizerStates(DeepOptimizerStatesConfig(enabled=False))


def test_update_stride_automatic_and_forced(h100_profile):
    auto = DeepOptimizerStates()
    assert auto.update_stride(h100_profile) == 2
    forced = DeepOptimizerStates(DeepOptimizerStatesConfig(update_stride=4))
    assert forced.update_stride(h100_profile) == 4


def test_offload_config_places_static_residents_at_end():
    strategy = DeepOptimizerStates(DeepOptimizerStatesConfig(static_gpu_fraction=0.25))
    offload = strategy.offload_config(1_000_000)
    assert offload.device == OffloadDevice.CPU
    assert offload.static_residents_at_end
    assert offload.static_resident_indices(8) == frozenset({6, 7})


def test_build_plan_combines_stride_and_residents(h100_profile):
    strategy = DeepOptimizerStates(DeepOptimizerStatesConfig(static_gpu_fraction=0.25))
    plan = strategy.build_plan(8, h100_profile)
    assert plan.stride == 2
    assert {6, 7} <= set(plan.gpu_indices())
    assert plan.gpu_fraction() >= 0.5


def test_strategy_flags(h100_profile):
    strategy = DeepOptimizerStates()
    assert not strategy.flush_blocks_backward()
    assert strategy.stages_subgroup_on_gpu()
    description = strategy.describe()
    assert description["strategy"] == "deep-optimizer-states"
    assert "update_stride" in description


def test_performance_model_uses_config_bounds(h100_profile):
    strategy = DeepOptimizerStates(DeepOptimizerStatesConfig(min_update_stride=3, max_update_stride=5))
    model = strategy.performance_model(h100_profile)
    assert model.stride >= 3


def test_numeric_executor_and_attach(h100_profile, rng):
    strategy = DeepOptimizerStates()
    executor = strategy.numeric_executor(10, h100_profile)
    assert isinstance(executor, InterleavedNumericExecutor)
    assert executor.stride == 2

    params = rng.normal(size=1000).astype(np.float32)
    optimizer = ShardedMixedPrecisionOptimizer(
        params, AdamRule(), data_parallel_degree=1, offload=strategy.offload_config(100)
    )
    attached = strategy.attach(optimizer, h100_profile)
    optimizer.set_gradients(rng.normal(size=1000).astype(np.float32))
    optimizer.step(attached)
    assert attached.devices_used()["gpu"] == 5


def test_json_round_trip_of_config():
    config = DeepOptimizerStatesConfig(update_stride=3, static_gpu_fraction=0.1)
    block = config.to_json_dict()
    assert block["deep_optimizer_states"]["update_stride"] == 3
    assert DeepOptimizerStatesConfig.from_json_dict(block) == config
