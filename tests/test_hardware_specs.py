"""Tests for machine specification dataclasses."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, GIB
from repro.hardware.specs import CpuSpec, GpuSpec, HostMemorySpec, NvlinkSpec, PcieLinkSpec


def test_gpu_spec_memory_and_flops(h100_machine):
    gpu = h100_machine.gpu
    assert gpu.memory_bytes == 80 * GIB
    assert gpu.fp16_flops == pytest.approx(989e12)


def test_gpu_spec_rejects_invalid_values():
    with pytest.raises(ConfigurationError):
        GpuSpec(name="bad", memory_gib=0, fp16_tflops=100, hbm_gbps=1000, adam_update_pps=1e9)
    with pytest.raises(ConfigurationError):
        GpuSpec(name="bad", memory_gib=80, fp16_tflops=100, hbm_gbps=1000, adam_update_pps=0)


def test_cpu_spec_core_counts_and_throughput():
    cpu = CpuSpec(name="test", sockets=2, cores_per_socket=48, adam_update_pps_per_core=83e6)
    assert cpu.total_cores == 96
    assert cpu.total_threads == 192
    assert cpu.aggregate_adam_update_pps == pytest.approx(96 * 83e6)
    assert cpu.adam_update_pps(24) == pytest.approx(24 * 83e6)
    # Requesting more cores than exist caps at the socket total.
    assert cpu.adam_update_pps(1000) == cpu.aggregate_adam_update_pps


def test_cpu_spec_rejects_non_positive_cores():
    with pytest.raises(ConfigurationError):
        CpuSpec(name="bad", sockets=0, cores_per_socket=8)
    cpu = CpuSpec(name="ok", sockets=1, cores_per_socket=8)
    with pytest.raises(ConfigurationError):
        cpu.adam_update_pps(0)


def test_pcie_bandwidth_lookup():
    pcie = PcieLinkSpec(
        generation=5, h2d_gbps_pinned=55, d2h_gbps_pinned=50, h2d_gbps_pageable=9, d2h_gbps_pageable=16
    )
    assert pcie.bandwidth_gbps("h2d") == 55
    assert pcie.bandwidth_gbps("d2h") == 50
    assert pcie.bandwidth_gbps("h2d", pinned=False) == 9
    assert pcie.bandwidth_gbps("d2h", pinned=False) == 16
    with pytest.raises(ConfigurationError):
        pcie.bandwidth_gbps("sideways")


def test_nvlink_and_host_memory_validation():
    with pytest.raises(ConfigurationError):
        NvlinkSpec(d2d_gbps=0)
    with pytest.raises(ConfigurationError):
        HostMemorySpec(capacity_gib=0)
    host = HostMemorySpec(capacity_gib=512)
    assert host.capacity_bytes == 512 * GIB


def test_machine_aggregates(h100_machine):
    assert h100_machine.total_gpu_memory_bytes == 4 * 80 * GIB
    assert h100_machine.cpu_cores_per_gpu == 24
    assert h100_machine.aggregate_gpu_update_pps == pytest.approx(100e9)
    assert h100_machine.pcie_h2d_bps == pytest.approx(55 * GB)


def test_machine_with_cpu_cores_per_gpu(h100_machine):
    restricted = h100_machine.with_cpu_cores_per_gpu(10)
    assert restricted.cpu_cores_per_gpu == pytest.approx(10, abs=1)
    assert restricted.num_gpus == h100_machine.num_gpus
    with pytest.raises(ConfigurationError):
        h100_machine.with_cpu_cores_per_gpu(0)


def test_machine_with_num_gpus(h100_machine):
    single = h100_machine.with_num_gpus(1)
    assert single.num_gpus == 1
    # Fewer GPUs share the same host CPUs, so each rank gets more cores.
    assert single.cpu_cores_per_gpu > h100_machine.cpu_cores_per_gpu
    with pytest.raises(ConfigurationError):
        h100_machine.with_num_gpus(0)
