"""Tests for the high-level simulated trainer."""

import pytest

from repro.training.config import TrainingJobConfig
from repro.training.trainer import Trainer, compare_strategies, run_job


def config(**kwargs):
    defaults = dict(model="7B", iterations=4, warmup_iterations=1)
    defaults.update(kwargs)
    return TrainingJobConfig(**defaults)


def test_run_produces_full_report():
    report = Trainer(config(strategy="zero3-offload")).run()
    assert not report.oom
    assert report.requested_iterations == 4
    assert len(report.breakdowns) == 3  # simulated iterations are capped
    assert report.iteration_seconds > 0
    assert report.update_throughput_pps > 0
    assert report.achieved_tflops > 0
    assert report.end_to_end_seconds >= report.iteration_seconds * 3
    row = report.as_row()
    assert row["model"] == "7B"


def test_end_to_end_extrapolation_scales_with_iterations():
    short = Trainer(config(strategy="zero3-offload", iterations=4)).run()
    long = Trainer(config(strategy="zero3-offload", iterations=100)).run()
    assert long.end_to_end_seconds > short.end_to_end_seconds * 10
    assert long.iteration_seconds == pytest.approx(short.iteration_seconds, rel=0.05)


def test_oom_reported_not_raised():
    report = Trainer(config(model="20B", microbatch_size=16)).run()
    assert report.oom
    assert "GPU memory" in report.oom_reason or "host memory" in report.oom_reason
    assert report.as_row()["oom"] is True


def test_update_throughput_definition():
    report = Trainer(config(strategy="zero3-offload")).run()
    job_params = report.job["parameters_billions"] * 1e9
    expected = job_params / report.steady_state.update_seconds
    assert report.update_throughput_pps == pytest.approx(expected, rel=0.01)


def test_run_job_convenience_wrapper():
    report = run_job(config(strategy="deep-optimizer-states"))
    assert report.job["strategy"] == "deep-optimizer-states"


def test_compare_strategies_runs_all_and_preserves_settings():
    reports = compare_strategies(
        config(model="7B", static_gpu_fraction=0.2),
        ["zero3-offload", "twinflow", "deep-optimizer-states"],
    )
    assert set(reports) == {"zero3-offload", "twinflow", "deep-optimizer-states"}
    assert reports["twinflow"].job["static_gpu_fraction"] == 0.2
    # The headline ordering of the paper: DOS < TwinFlow < ZeRO-3 iteration time.
    assert (
        reports["deep-optimizer-states"].iteration_seconds
        < reports["twinflow"].iteration_seconds
        < reports["zero3-offload"].iteration_seconds
    )


def test_speedup_band_matches_paper_for_7b():
    reports = compare_strategies(config(model="7B"), ["zero3-offload", "deep-optimizer-states"])
    speedup = reports["deep-optimizer-states"].speedup_over(reports["zero3-offload"])
    assert 1.8 <= speedup <= 3.0
