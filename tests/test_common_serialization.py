"""Tests for the JSON configuration helpers."""

from dataclasses import dataclass, field

import pytest

from repro.common.errors import ConfigurationError
from repro.common.serialization import dump_json, from_dict, load_json, to_dict
from repro.core.engine import DeepOptimizerStatesConfig
from repro.zero.offload import OffloadConfig, OffloadDevice


@dataclass
class _Inner:
    value: int = 1


@dataclass
class _Outer:
    name: str = "outer"
    inner: _Inner = field(default_factory=_Inner)


def test_to_dict_recurses_into_nested_dataclasses():
    data = to_dict(_Outer(name="x", inner=_Inner(value=7)))
    assert data == {"name": "x", "inner": {"value": 7}}


def test_from_dict_builds_nested_dataclasses():
    outer = from_dict(_Outer, {"name": "y", "inner": {"value": 3}})
    assert outer.name == "y"
    assert outer.inner.value == 3


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        from_dict(_Outer, {"name": "y", "bogus": 1})


def test_from_dict_rejects_non_dataclass():
    with pytest.raises(ConfigurationError):
        from_dict(dict, {"a": 1})


def test_enum_fields_serialise_to_values():
    config = OffloadConfig(device=OffloadDevice.CPU)
    data = to_dict(config)
    assert data["device"] == "cpu"
    restored = from_dict(OffloadConfig, data)
    assert restored.device == OffloadDevice.CPU


def test_round_trip_through_file(tmp_path):
    config = DeepOptimizerStatesConfig(subgroup_size=5_000_000, update_stride=3)
    path = tmp_path / "dos.json"
    dump_json(config, path)
    restored = load_json(DeepOptimizerStatesConfig, path)
    assert restored == config


def test_deep_optimizer_states_json_block_round_trip():
    config = DeepOptimizerStatesConfig(static_gpu_fraction=0.25)
    block = config.to_json_dict()
    assert "deep_optimizer_states" in block
    assert DeepOptimizerStatesConfig.from_json_dict(block) == config
    assert DeepOptimizerStatesConfig.from_json_dict(block["deep_optimizer_states"]) == config
