"""Tests for the mixed-precision Adam rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import ConfigurationError
from repro.optim.adam import AdamConfig, AdamRule, adam_reference_update


def run_steps(rule, params, grads_list):
    state = rule.init_state(params.size)
    for step, grads in enumerate(grads_list, start=1):
        rule.apply(params, grads, state, step)
    return params, state


def test_single_step_matches_float64_reference(rng):
    config = AdamConfig(learning_rate=1e-3)
    rule = AdamRule(config)
    params = rng.normal(size=128).astype(np.float32)
    grads = rng.normal(size=128).astype(np.float32)
    expected_p, expected_m, expected_v = adam_reference_update(
        params, grads, np.zeros(128), np.zeros(128), 1, config
    )
    state = rule.init_state(128)
    rule.apply(params, grads, state, 1)
    np.testing.assert_allclose(params, expected_p, rtol=1e-5, atol=1e-7)
    np.testing.assert_allclose(state["momentum"], expected_m, rtol=1e-5, atol=1e-7)
    np.testing.assert_allclose(state["variance"], expected_v, rtol=1e-5, atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(np.float32, 32, elements=st.floats(-2, 2, allow_nan=False, width=32)),
    hnp.arrays(np.float32, 32, elements=st.floats(-2, 2, allow_nan=False, width=32)),
    st.integers(1, 5),
)
def test_multi_step_matches_reference(params0, grads, steps):
    config = AdamConfig(learning_rate=1e-2)
    rule = AdamRule(config)
    params = params0.copy()
    state = rule.init_state(32)
    reference_p = params0.astype(np.float64)
    reference_m = np.zeros(32)
    reference_v = np.zeros(32)
    for step in range(1, steps + 1):
        rule.apply(params, grads, state, step)
        reference_p, reference_m, reference_v = adam_reference_update(
            reference_p, grads, reference_m, reference_v, step, config
        )
    np.testing.assert_allclose(params, reference_p, rtol=1e-4, atol=1e-5)


def test_bias_correction_scales_first_step():
    params_corrected = np.zeros(4, dtype=np.float32)
    params_uncorrected = np.zeros(4, dtype=np.float32)
    grads = np.full(4, 0.5, dtype=np.float32)
    learning_rate = 1e-3
    corrected = AdamRule(AdamConfig(learning_rate=learning_rate, bias_correction=True))
    uncorrected = AdamRule(AdamConfig(learning_rate=learning_rate, bias_correction=False))
    corrected.apply(params_corrected, grads, corrected.init_state(4), 1)
    uncorrected.apply(params_uncorrected, grads, uncorrected.init_state(4), 1)
    # With bias correction the first step has magnitude ~lr (the Adam paper's invariant);
    # without it the first step overshoots by roughly (1-beta1)/sqrt(1-beta2) ~= 3.2x.
    assert abs(params_corrected[0]) == pytest.approx(learning_rate, rel=1e-3)
    assert abs(params_uncorrected[0]) > abs(params_corrected[0]) * 2


def test_adamw_decoupled_weight_decay_shrinks_params_without_gradients():
    rule = AdamRule(AdamConfig(learning_rate=1e-2, weight_decay=0.1, adamw_mode=True))
    params = np.full(8, 2.0, dtype=np.float32)
    rule.apply(params, np.zeros(8, dtype=np.float32), rule.init_state(8), 1)
    assert np.all(params < 2.0)


def test_l2_mode_adds_decay_to_gradient():
    adamw = AdamRule(AdamConfig(learning_rate=1e-2, weight_decay=0.1, adamw_mode=True))
    l2 = AdamRule(AdamConfig(learning_rate=1e-2, weight_decay=0.1, adamw_mode=False))
    grads = np.full(4, 0.5, dtype=np.float32)
    params_a = np.full(4, 1.0, dtype=np.float32)
    params_b = np.full(4, 1.0, dtype=np.float32)
    adamw.apply(params_a, grads, adamw.init_state(4), 1)
    l2.apply(params_b, grads, l2.init_state(4), 1)
    assert not np.allclose(params_a, params_b)


def test_step_must_be_one_based_and_buffers_validated(rng):
    rule = AdamRule()
    params = rng.normal(size=8).astype(np.float32)
    grads = rng.normal(size=8).astype(np.float32)
    state = rule.init_state(8)
    with pytest.raises(ConfigurationError):
        rule.apply(params, grads, state, 0)
    with pytest.raises(ConfigurationError):
        rule.apply(params, grads[:4], state, 1)
    with pytest.raises(ConfigurationError):
        rule.apply(params, grads, {"momentum": state["momentum"]}, 1)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AdamConfig(learning_rate=0.0)
    with pytest.raises(ConfigurationError):
        AdamConfig(beta1=1.0)
    with pytest.raises(ConfigurationError):
        AdamConfig(eps=0.0)
    with pytest.raises(ConfigurationError):
        AdamConfig(weight_decay=-0.1)


def test_state_bytes_per_param():
    assert AdamRule().state_bytes_per_param == 8  # momentum + variance in FP32


def test_update_is_elementwise_independent(rng):
    """Adam is embarrassingly parallel: updating a slice equals slicing the full update."""
    config = AdamConfig(learning_rate=5e-3)
    full_rule = AdamRule(config)
    params = rng.normal(size=64).astype(np.float32)
    grads = rng.normal(size=64).astype(np.float32)
    full = params.copy()
    full_state = full_rule.init_state(64)
    full_rule.apply(full, grads, full_state, 1)

    split = params.copy()
    left_state = full_rule.init_state(32)
    right_state = full_rule.init_state(32)
    full_rule.apply(split[:32], grads[:32], left_state, 1)
    full_rule.apply(split[32:], grads[32:], right_state, 1)
    np.testing.assert_array_equal(full, split)
