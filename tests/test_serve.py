"""The serve layer: coalescing, policy merging, both wire fronts, admission.

**Unit layer** — :class:`CoalescingMap` leader/follower mechanics and
per-request policy resolution (client overrides on server defaults,
``cache_dir`` excluded).

**Differential layer** — the serve counterpart of the dispatch suite's
headline guarantee: a ``sweep`` served over HTTP or frames is **byte-identical**
to the ``repro sweep --json`` export of the same grid, on the serial and pool
backends alike.  The service is a transport, never a second implementation.

**Concurrency layer** — two identical in-flight requests trigger exactly one
computation (the follower counter proves it), and the admission middleware
(``quota``, ``concurrency``) throttle with the right wire statuses.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import dispatch_workers
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.middleware import reset_middleware_metrics
from repro.middleware.builtin import ConcurrencyLimitError, QuotaExceededError
from repro.runtime import ExecutionPolicy
from repro.serve import (
    CLIENT_POLICY_FIELDS,
    CoalescingMap,
    ServeClient,
    ServeRequestError,
    ServerThread,
    UnknownMethodError,
    error_status,
    resolve_request_policy,
)
from repro.sweep import SweepRunner, SweepSpec


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_middleware_metrics()
    yield
    reset_middleware_metrics()


def _get(address: tuple, path: str) -> tuple[int, dict]:
    host, port = address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(address: tuple, path: str, body: dict,
          headers: dict | None = None) -> tuple[int, bytes]:
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


# ------------------------------------------------------------------ coalescing


def test_coalescing_map_shares_one_computation_between_identical_calls():
    coalescer = CoalescingMap()
    entered = threading.Event()
    release = threading.Event()
    calls: list = []

    def compute():
        calls.append("computed")
        entered.set()
        release.wait(timeout=10.0)
        return {"value": 42}

    results: list = []
    leader = threading.Thread(
        target=lambda: results.append(coalescer.run("k", compute)))
    leader.start()
    assert entered.wait(timeout=10.0)
    assert coalescer.stats()["inflight"] == 1
    follower = threading.Thread(
        target=lambda: results.append(coalescer.run("k", compute)))
    follower.start()
    release.set()
    leader.join(timeout=10.0)
    follower.join(timeout=10.0)
    assert calls == ["computed"]  # one execution, two results
    assert results == [{"value": 42}, {"value": 42}]
    assert results[0] is results[1]  # shared, not recomputed
    assert coalescer.stats() == {"inflight": 0, "leaders_total": 1,
                                 "followers_total": 1}


def test_coalescing_delivers_the_leaders_exception_to_followers():
    coalescer = CoalescingMap()
    entered = threading.Event()
    release = threading.Event()
    errors: list = []

    def explode():
        entered.set()
        release.wait(timeout=10.0)
        raise ValueError("boom")

    def lead():
        with pytest.raises(ValueError):
            coalescer.run("k", explode)

    def follow():
        try:
            coalescer.run("k", explode)
        except ValueError as exc:
            errors.append(str(exc))

    leader = threading.Thread(target=lead)
    leader.start()
    assert entered.wait(timeout=10.0)
    follower = threading.Thread(target=follow)
    follower.start()
    release.set()
    leader.join(timeout=10.0)
    follower.join(timeout=10.0)
    assert errors == ["boom"]  # failures are shared too, never retried silently


def test_coalescing_scope_is_in_flight_only():
    coalescer = CoalescingMap()
    assert coalescer.run("k", lambda: 1) == 1
    assert coalescer.run("k", lambda: 2) == 2  # past results are not a cache
    assert coalescer.stats() == {"inflight": 0, "leaders_total": 2,
                                 "followers_total": 0}


# -------------------------------------------------------------- policy merging


def test_request_policy_overrides_ride_on_the_servers_policy():
    server_policy = ExecutionPolicy.resolve(jobs=1, use_cache=False)
    merged = resolve_request_policy(server_policy, {"jobs": 4, "executor": "pool"})
    assert (merged.jobs, merged.executor) == (4, "pool")
    assert merged.use_cache is False  # server defaults survive underneath
    assert resolve_request_policy(server_policy, None) is server_policy
    assert resolve_request_policy(server_policy, {}) is server_policy


def test_request_policy_rejects_cache_dir_and_unknown_fields():
    server_policy = ExecutionPolicy.resolve()
    assert "cache_dir" not in CLIENT_POLICY_FIELDS
    with pytest.raises(ConfigurationError, match="cache_dir"):
        resolve_request_policy(server_policy, {"cache_dir": "/tmp/elsewhere"})
    with pytest.raises(ConfigurationError, match="wormhole"):
        resolve_request_policy(server_policy, {"wormhole": True})
    with pytest.raises(ConfigurationError, match="JSON object"):
        resolve_request_policy(server_policy, ["jobs", 4])


def test_error_status_maps_every_failure_class():
    assert error_status(UnknownMethodError("x")) == 404
    assert error_status(ConfigurationError("x")) == 400
    assert error_status(QuotaExceededError("x")) == 429
    assert error_status(ConcurrencyLimitError("x")) == 503
    assert error_status(RuntimeError("x")) == 500


# ------------------------------------------------------------- framed requests


def test_framed_client_round_trips_ping_health_and_errors():
    with ServerThread() as running:
        with ServeClient(running.address) as client:
            assert client.request("ping") == {"pong": True}
            health = client.request("health")
            assert health["status"] == "ok"
            assert "sweep" in health["methods"]
            with pytest.raises(ServeRequestError) as unknown:
                client.request("warp")
            assert unknown.value.status == 404
            assert unknown.value.error_type == "UnknownMethodError"
            with pytest.raises(ServeRequestError) as bad_policy:
                client.request("ping", policy={"cache_dir": "/tmp/x"})
            assert bad_policy.value.status == 400
            # The connection survives errors: the next request still works.
            assert client.request("ping") == {"pong": True}


def test_framed_sweep_matches_a_local_run_exactly():
    axes = {"x": [1, 2, 3]}
    with ServerThread(policy=ExecutionPolicy.resolve(use_cache=False)) as running:
        with ServeClient(running.address) as client:
            served = client.request("sweep", {
                "worker": "dispatch_workers:echo_params", "axes": axes,
            }, policy={"executor": "serial"})
    # Built through the same stack, so the dict (and hence any serialization
    # of it) must match a direct SweepRunner run.
    local = SweepRunner(dispatch_workers.echo_params, use_cache=False,
                        executor="serial").run(
        SweepSpec.build({"x": (1, 2, 3)})).to_dict()
    assert served == local


# ----------------------------------------------------- HTTP front + routing


def test_http_front_serves_health_metrics_and_404s():
    with ServerThread() as running:
        status, health = _get(running.address, "/health")
        assert (status, health["status"]) == (200, "ok")
        status, metrics = _get(running.address, "/metrics")
        assert status == 200
        assert metrics["coalescing"] == {"inflight": 0, "leaders_total": 0,
                                         "followers_total": 0}
        status, body = _get(running.address, "/nope")
        assert (status, body["error"]["status"]) == (404, 404)
        status, raw = _post(running.address, "/v1/warp", {})
        assert status == 404
        status, raw = _post(running.address, "/v1/sweep", {"params": {}})
        assert status == 400  # no axes
        host, port = running.address
        request = urllib.request.Request(f"http://{host}:{port}/v1/sweep")
        with pytest.raises(urllib.error.HTTPError) as wrong_verb:
            urllib.request.urlopen(request)  # GET on a POST endpoint
        assert wrong_verb.value.code == 405


@pytest.mark.parametrize("request_policy,cli_flags", [
    ({"executor": "serial"}, []),
    ({"executor": "pool", "jobs": 2}, ["--executor", "pool", "--jobs", "2"]),
])
def test_http_sweep_is_byte_identical_to_the_cli_export(tmp_path, capsys,
                                                        request_policy, cli_flags):
    """The tentpole differential: the HTTP response body for a grid equals the
    ``repro sweep --json`` export of that grid byte for byte, per backend."""
    grid = {
        "worker": "training",
        "axes": {"model": "7B", "strategy": "deep-optimizer-states",
                 "machine": "jlse-4xh100", "cpu_cores_per_gpu": [4, 8]},
        "base": {"iterations": 2},
    }
    with ServerThread(policy=ExecutionPolicy.resolve(use_cache=False)) as running:
        status, served = _post(running.address, "/v1/sweep",
                               {"params": grid, "policy": request_policy})
    assert status == 200
    out = tmp_path / "cli.json"
    assert main(["sweep", "--models", "7B",
                 "--strategies", "deep-optimizer-states",
                 "--machines", "jlse-4xh100",
                 "--axis", "cpu_cores_per_gpu=4,8",
                 "--iterations", "2",
                 "--no-cache", "--json", str(out)] + cli_flags) == 0
    capsys.readouterr()
    assert served == out.read_bytes()


# ------------------------------------------------------- concurrent coalescing


def _poll(predicate, timeout: float = 10.0) -> bool:
    import time as time_module

    deadline = time_module.monotonic() + timeout
    while time_module.monotonic() < deadline:
        if predicate():
            return True
        time_module.sleep(0.01)
    return False


def test_identical_inflight_requests_coalesce_into_one_computation():
    params = {"worker": "dispatch_workers:slow_echo",
              "axes": {"x": [1, 2]}, "base": {"delay": 0.4}}
    with ServerThread(policy=ExecutionPolicy.resolve(use_cache=False)) as running:
        server = running.server
        results: list = []
        with ServeClient(running.address, client_id="one") as first, \
                ServeClient(running.address, client_id="two") as second:
            leader = threading.Thread(
                target=lambda: results.append(first.request("sweep", params)))
            leader.start()
            # Only after the leader is registered can a second request follow
            # instead of leading its own computation.
            assert _poll(lambda: server.coalescer.stats()["inflight"] == 1)
            results.append(second.request("sweep", params))
            leader.join(timeout=30.0)
        stats = server.coalescer.stats()
    assert stats["leaders_total"] == 1
    assert stats["followers_total"] == 1
    assert results[0] == results[1]
    assert json.dumps(results[0], sort_keys=True) == \
        json.dumps(results[1], sort_keys=True)


def test_different_policies_do_not_coalesce():
    params = {"worker": "dispatch_workers:echo_params", "axes": {"x": [1]}}
    with ServerThread(policy=ExecutionPolicy.resolve(use_cache=False)) as running:
        with ServeClient(running.address) as client:
            client.request("sweep", params, policy={"executor": "serial"})
            client.request("sweep", params, policy={"executor": "serial", "jobs": 2})
        stats = running.server.coalescer.stats()
    # Sequential here, so both led — the point is the *keys* differ: a jobs=2
    # response records jobs=2 in its export and must never alias a jobs=1 run.
    assert stats["leaders_total"] == 2


# --------------------------------------------------------- admission control


def test_quota_middleware_throttles_with_429_over_the_wire():
    policy = ExecutionPolicy.resolve(use_cache=False,
                                     middleware=("quota:limit=2",))
    with ServerThread(policy=policy) as running:
        with ServeClient(running.address, client_id="greedy") as client:
            client.request("ping")
            client.request("ping")
            with pytest.raises(ServeRequestError) as throttled:
                client.request("ping")
        assert throttled.value.status == 429
        assert throttled.value.error_type == "QuotaExceededError"
        # Introspection bypasses the chain: a throttled client can still ask
        # the server how throttled it is.
        status, _ = _get(running.address, "/metrics")
        assert status == 200
        # And quota is per client: a different identity is admitted.
        status, _ = _post(running.address, "/v1/ping", {},
                          headers={"X-Repro-Client": "modest"})
        assert status == 200


def test_quota_429_maps_onto_http_too():
    policy = ExecutionPolicy.resolve(use_cache=False,
                                     middleware=("quota:limit=1",))
    with ServerThread(policy=policy) as running:
        status, _ = _post(running.address, "/v1/ping", {},
                          headers={"X-Repro-Client": "c"})
        assert status == 200
        status, body = _post(running.address, "/v1/ping", {},
                             headers={"X-Repro-Client": "c"})
    assert status == 429
    assert json.loads(body)["error"]["type"] == "QuotaExceededError"
