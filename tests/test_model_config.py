"""Tests for the transformer configuration and its analytic size model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.model.config import TransformerConfig
from repro.model.presets import MODEL_PRESETS


def test_parameter_count_formula_small_case():
    config = TransformerConfig(
        name="unit", num_layers=2, hidden_size=8, num_attention_heads=2, vocab_size=16,
        sequence_length=4,
    )
    hidden = 8
    per_layer = (4 * hidden * hidden + 4 * hidden) + (2 * hidden * 4 * hidden + 4 * hidden + hidden) + 4 * hidden
    expected = 2 * per_layer + 16 * hidden + 2 * hidden
    assert config.num_parameters() == expected


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        TransformerConfig(name="bad", num_layers=0, hidden_size=8, num_attention_heads=2)
    with pytest.raises(ConfigurationError):
        TransformerConfig(name="bad", num_layers=2, hidden_size=10, num_attention_heads=3)
    with pytest.raises(ConfigurationError):
        TransformerConfig(name="bad", num_layers=2, hidden_size=8, num_attention_heads=2, vocab_size=0)


@pytest.mark.parametrize(
    "name,expected_billions,tolerance",
    [("7B", 7.0, 0.1), ("8.3B", 8.3, 0.05), ("10B", 10.0, 0.05), ("13B", 13.0, 0.05), ("20B", 20.0, 0.12)],
)
def test_preset_parameter_counts_match_labels(name, expected_billions, tolerance):
    config = MODEL_PRESETS[name]
    assert config.billions_of_parameters == pytest.approx(expected_billions, rel=tolerance)


@pytest.mark.parametrize(
    "name,paper_fp16_gb,paper_fp32_gb",
    [("7B", 24, 96), ("8.3B", 30, 121), ("10B", 37, 150), ("13B", 46, 188), ("20B", 73, 294)],
)
def test_table2_state_sizes_close_to_paper(name, paper_fp16_gb, paper_fp32_gb):
    config = MODEL_PRESETS[name]
    assert config.fp16_model_state_gib() == pytest.approx(paper_fp16_gb, rel=0.15)
    assert config.fp32_optimizer_state_gib() == pytest.approx(paper_fp32_gb, rel=0.15)


def test_state_sizes_follow_mixed_precision_accounting():
    config = MODEL_PRESETS["7B"]
    params = config.num_parameters()
    assert config.fp16_model_state_bytes() == 4 * params
    assert config.fp32_optimizer_state_bytes() == 16 * params


def test_activation_bytes_scale_with_microbatch_and_checkpointing():
    config = MODEL_PRESETS["20B"]
    full_1 = config.activation_bytes(1, checkpointing=False)
    full_2 = config.activation_bytes(2, checkpointing=False)
    ckpt_1 = config.activation_bytes(1, checkpointing=True)
    assert full_2 == 2 * full_1
    assert ckpt_1 < full_1 / 5
    assert config.single_layer_activation_bytes(1) < full_1
    with pytest.raises(ConfigurationError):
        config.activation_bytes(0, checkpointing=True)


def test_head_and_ffn_dimensions():
    config = MODEL_PRESETS["13B"]
    assert config.head_dim == 128
    assert config.ffn_hidden_size == 4 * config.hidden_size


def test_describe_contains_table2_fields():
    description = MODEL_PRESETS["10B"].describe()
    for key in ("name", "num_layers", "hidden_size", "attention_heads", "fp16_model_gib"):
        assert key in description
