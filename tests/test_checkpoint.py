"""Tests for optimizer-state checkpointing and resume."""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointManifest,
    load_optimizer_checkpoint,
    save_optimizer_checkpoint,
)
from repro.common.errors import ConfigurationError
from repro.core.numeric_executor import InterleavedNumericExecutor
from repro.optim import AdamRule
from repro.zero.offload import OffloadConfig
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer


def make_optimizer(num_params=800, dp=2, subgroup_size=100, seed=0):
    rng = np.random.default_rng(seed)
    params = rng.normal(size=num_params).astype(np.float32)
    return (
        ShardedMixedPrecisionOptimizer(
            params,
            AdamRule(),
            data_parallel_degree=dp,
            offload=OffloadConfig(subgroup_size=subgroup_size),
        ),
        rng,
    )


def test_save_and_resume_round_trip(tmp_path):
    optimizer, rng = make_optimizer()
    for _ in range(3):
        optimizer.set_gradients(rng.normal(size=800).astype(np.float32))
        optimizer.step(InterleavedNumericExecutor(stride=2))
    manifest = save_optimizer_checkpoint(optimizer, tmp_path / "ckpt")
    assert manifest.step_count == 3
    assert (tmp_path / "ckpt" / "manifest.json").exists()
    assert len(manifest.rank_files) == 2

    restored, _ = make_optimizer(seed=99)
    load_optimizer_checkpoint(restored, tmp_path / "ckpt")
    assert restored.step_count == 3
    np.testing.assert_array_equal(
        restored.gathered_fp32_parameters(), optimizer.gathered_fp32_parameters()
    )
    np.testing.assert_array_equal(
        restored.gathered_fp16_parameters(), optimizer.gathered_fp16_parameters()
    )


def test_resume_continues_identically_to_uninterrupted_run(tmp_path):
    reference, rng = make_optimizer(seed=1)
    interrupted, _ = make_optimizer(seed=1)
    gradients = [np.random.default_rng(10 + i).normal(size=800).astype(np.float32) for i in range(4)]

    for grads in gradients[:2]:
        for optimizer in (reference, interrupted):
            optimizer.set_gradients(grads)
            optimizer.step(InterleavedNumericExecutor(stride=2))

    save_optimizer_checkpoint(interrupted, tmp_path / "mid")
    resumed, _ = make_optimizer(seed=42)
    load_optimizer_checkpoint(resumed, tmp_path / "mid")

    for grads in gradients[2:]:
        for optimizer in (reference, resumed):
            optimizer.set_gradients(grads)
            optimizer.step(InterleavedNumericExecutor(stride=2))

    np.testing.assert_array_equal(
        reference.gathered_fp32_parameters(), resumed.gathered_fp32_parameters()
    )


def test_manifest_json_round_trip():
    manifest = CheckpointManifest(
        step_count=5, num_params=10, data_parallel_degree=2, subgroup_size=4,
        rank_files={"0": "rank000.npz"}, checksums={"0": "abc"},
    )
    restored = CheckpointManifest.from_json(manifest.to_json())
    assert restored == manifest


def test_mismatched_optimizer_rejected(tmp_path):
    optimizer, _ = make_optimizer(num_params=800)
    save_optimizer_checkpoint(optimizer, tmp_path / "ckpt")
    smaller, _ = make_optimizer(num_params=400)
    with pytest.raises(ConfigurationError):
        load_optimizer_checkpoint(smaller, tmp_path / "ckpt")
    wrong_dp, _ = make_optimizer(num_params=800, dp=1)
    with pytest.raises(ConfigurationError):
        load_optimizer_checkpoint(wrong_dp, tmp_path / "ckpt")


def test_missing_manifest_and_corruption_detected(tmp_path):
    optimizer, _ = make_optimizer()
    with pytest.raises(ConfigurationError):
        load_optimizer_checkpoint(optimizer, tmp_path / "nothing-here")

    save_optimizer_checkpoint(optimizer, tmp_path / "ckpt")
    # Corrupt one rank file by rewriting it with different contents.
    other, rng = make_optimizer(seed=7)
    other.set_gradients(rng.normal(size=800).astype(np.float32))
    other.step()
    import numpy as np_

    target = tmp_path / "ckpt" / "rank000.npz"
    arrays = {}
    with np_.load(target) as stored:
        for name in stored.files:
            arrays[name] = stored[name] + 1.0
    np_.savez(target, **arrays)
    with pytest.raises(ConfigurationError):
        load_optimizer_checkpoint(optimizer, tmp_path / "ckpt", verify=True)
