"""Tests for memory and throughput trace reconstruction."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sim.engine import SimEngine
from repro.sim.ops import OpKind, SimOp
from repro.sim.trace import MemoryTimeline, ThroughputTimeline, sample_series


def _schedule_with_memory_and_transfers():
    engine = SimEngine()
    engine.add_resource("gpu")
    engine.add_resource("d2h")
    alloc = SimOp("alloc", OpKind.GPU_COMPUTE, "gpu", 1.0, gpu_mem_delta=1000)
    compute = SimOp("compute", OpKind.GPU_COMPUTE, "gpu", 1.0, gpu_mem_delta=500)
    free = SimOp("free", OpKind.GPU_COMPUTE, "gpu", 1.0, gpu_mem_delta=-1500)
    copy = SimOp("copy", OpKind.D2H, "d2h", 2.0, payload_bytes=200, deps=(alloc.op_id,))
    engine.submit_many([alloc, compute, free, copy])
    return engine.run()


def test_memory_timeline_tracks_deltas_and_peak():
    schedule = _schedule_with_memory_and_transfers()
    timeline = MemoryTimeline.from_schedule(schedule, initial_bytes=100)
    assert timeline.used_bytes[0] == 100
    assert timeline.peak_bytes == 1600
    assert timeline.final_bytes == 100
    assert timeline.at(0.5) == 100
    assert timeline.at(1.5) == 1100
    assert timeline.at(10.0) == 100


def test_memory_timeline_sampling():
    schedule = _schedule_with_memory_and_transfers()
    timeline = MemoryTimeline.from_schedule(schedule)
    grid, values = timeline.sample(resolution=0.5)
    assert len(grid) == len(values)
    assert values.min() >= 0
    with pytest.raises(ConfigurationError):
        timeline.sample(resolution=0.0)


def test_throughput_timeline_integral_matches_payload():
    schedule = _schedule_with_memory_and_transfers()
    timeline = ThroughputTimeline.from_schedule(schedule, OpKind.D2H, resolution=0.1)
    assert timeline.total_bytes() == pytest.approx(200, rel=0.05)
    assert timeline.peak_bps == pytest.approx(100, rel=0.05)
    assert timeline.mean_bps <= timeline.peak_bps


def test_throughput_timeline_empty_kind_is_zero():
    schedule = _schedule_with_memory_and_transfers()
    timeline = ThroughputTimeline.from_schedule(schedule, OpKind.H2D, resolution=0.1)
    assert timeline.total_bytes() == 0.0
    assert timeline.peak_bps == 0.0


def test_sample_series_steps():
    grid, values = sample_series([1.0, 2.0, 3.0], [10.0, 20.0, 5.0], resolution=0.5)
    assert values[0] == 10.0  # before the first event the first value holds
    assert values[np.searchsorted(grid, 2.2)] == 20.0
    assert values[-1] == 5.0
    with pytest.raises(ConfigurationError):
        sample_series([1.0], [1.0], resolution=0)


def test_sample_series_empty_input():
    grid, values = sample_series([], [], resolution=0.5)
    assert grid.size == 0
    assert values.size == 0
