"""Golden-equivalence property test: heap engine == seed list-scheduler, exactly.

The heap-based ready-set in :meth:`repro.sim.engine.SimEngine.run` must produce
*byte-identical* schedules to the original per-pop scan over all resource queues.
``_seed_list_scheduler`` below is a verbatim port of the seed algorithm; the
hypothesis test submits the same randomized DAGs (random resources, dependencies,
durations and release times) to both and compares every (op id, start, end) triple
with exact float equality.
"""

from dataclasses import dataclass
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine
from repro.sim.ops import OpKind, SimOp

RESOURCES = ("cpu", "gpu", "link", "pcie.h2d", "pcie.d2h")


@dataclass(frozen=True)
class _SeedScheduled:
    op_id: int
    start: float
    end: float


def _seed_list_scheduler(
    resources: tuple[str, ...],
    submissions: list[SimOp],
    release_times: dict[int, float],
) -> list[_SeedScheduled]:
    """The seed algorithm: per-pop scan over all resource queues (reference)."""
    queues: dict[str, deque[SimOp]] = {name: deque() for name in resources}
    for op in submissions:
        queues[op.resource].append(op)
    finished: dict[int, float] = {}
    resource_free = {name: 0.0 for name in resources}
    scheduled: list[_SeedScheduled] = []

    remaining = len(submissions)
    while remaining:
        best: tuple[float, str, SimOp] | None = None
        for name, queue in queues.items():
            if not queue:
                continue
            head = queue[0]
            if any(dep not in finished for dep in head.deps):
                continue
            deps_end = max((finished[dep] for dep in head.deps), default=0.0)
            release = release_times.get(head.op_id, 0.0)
            start = max(resource_free[name], deps_end, release)
            if best is None or start < best[0] or (start == best[0] and name < best[1]):
                best = (start, name, head)
        assert best is not None, "reference scheduler deadlocked on a valid DAG"
        start, name, op = best
        queues[name].popleft()
        end = start + op.duration
        finished[op.op_id] = end
        resource_free[name] = end
        scheduled.append(_SeedScheduled(op_id=op.op_id, start=start, end=end))
        remaining -= 1

    scheduled.sort(key=lambda item: (item.start, item.op_id))
    return scheduled


def _build_ops(jobs, data) -> tuple[list[SimOp], dict[int, float]]:
    """Materialise a random DAG: jobs are (resource index, duration) pairs."""
    submitted: list[SimOp] = []
    release_times: dict[int, float] = {}
    for resource_index, duration, with_release in jobs:
        deps = ()
        if submitted:
            num_deps = data.draw(st.integers(0, min(3, len(submitted))))
            chosen = data.draw(
                st.lists(
                    st.integers(0, len(submitted) - 1),
                    min_size=num_deps,
                    max_size=num_deps,
                )
            )
            deps = tuple(submitted[i].op_id for i in chosen)
        op = SimOp(
            name=f"op{len(submitted)}",
            kind=OpKind.GPU_COMPUTE,
            resource=RESOURCES[resource_index],
            duration=duration,
            deps=deps,
        )
        submitted.append(op)
        if with_release:
            release_times[op.op_id] = data.draw(
                st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False)
            )
    return submitted, release_times


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, len(RESOURCES) - 1),
            st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    ),
    st.data(),
)
def test_heap_engine_matches_seed_scheduler_exactly(jobs, data):
    """Randomized DAGs schedule byte-identically under the heap and seed engines."""
    submissions, release_times = _build_ops(jobs, data)

    engine = SimEngine()
    for name in RESOURCES:
        engine.add_resource(name)
    for op in submissions:
        engine.submit(op, not_before=release_times.get(op.op_id, 0.0))
    schedule = engine.run()

    reference = _seed_list_scheduler(RESOURCES, submissions, release_times)

    got = [(item.op.op_id, item.start, item.end) for item in schedule.ops]
    expected = [(item.op_id, item.start, item.end) for item in reference]
    # Exact float equality on purpose: both schedulers must compute identical start
    # times through identical max() chains, not merely close ones.
    assert got == expected


def test_heap_engine_matches_seed_on_duplicate_deps():
    """Duplicate dependency ids behave identically in both schedulers."""
    engine = SimEngine()
    for name in RESOURCES:
        engine.add_resource(name)
    producer = SimOp("p", OpKind.GPU_COMPUTE, "gpu", 2.0)
    consumer = SimOp(
        "c", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(producer.op_id, producer.op_id)
    )
    engine.submit(producer)
    engine.submit(consumer)
    schedule = engine.run()
    reference = _seed_list_scheduler(RESOURCES, [producer, consumer], {})
    assert [(i.op.op_id, i.start, i.end) for i in schedule.ops] == [
        (i.op_id, i.start, i.end) for i in reference
    ]


def test_heap_engine_matches_seed_on_cross_resource_chain():
    """A ping-pong chain across resources with release times matches exactly."""
    engine = SimEngine()
    for name in RESOURCES:
        engine.add_resource(name)
    ops: list[SimOp] = []
    release: dict[int, float] = {}
    previous: SimOp | None = None
    for index in range(12):
        op = SimOp(
            name=f"chain{index}",
            kind=OpKind.H2D if index % 2 else OpKind.D2H,
            resource=RESOURCES[index % len(RESOURCES)],
            duration=0.25 * (index % 3),
            deps=(previous.op_id,) if previous is not None else (),
        )
        ops.append(op)
        if index % 4 == 0:
            release[op.op_id] = 0.5 * index
        previous = op
    for op in ops:
        engine.submit(op, not_before=release.get(op.op_id, 0.0))
    schedule = engine.run()
    reference = _seed_list_scheduler(RESOURCES, ops, release)
    assert [(i.op.op_id, i.start, i.end) for i in schedule.ops] == [
        (i.op_id, i.start, i.end) for i in reference
    ]
