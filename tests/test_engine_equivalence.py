"""Three-way differential harness: seed reference == heap == batch == vector.

Every randomized DAG is scheduled four ways and all results must agree with
*exact float equality* on every ``(op id, start, end)`` triple:

* ``_seed_list_scheduler`` — a verbatim port of the seed algorithm (per-pop scan
  over all resource queues), the reference;
* the heap engine's **eager** path (:meth:`SimEngine.submit` + :meth:`SimEngine.run`);
* the heap engine's **batched** path (:meth:`SimEngine.run_batch` over the same
  operations as :class:`~repro.sim.opbatch.OpBatch` rows);
* the **vector** kernel (:meth:`SimEngine.run_vector`, the numpy
  struct-of-arrays backend of :mod:`repro.sim.veckernel`).

The DAG generator deliberately covers the shapes that stress scheduler corner
cases: zero-duration operations (ties on the ready heap), ``not_before`` release
times, diamond and fan-in dependency patterns (including duplicate dependency
ids), long same-resource chains, and single-resource workloads (pure FIFO).

Exact equality is the point: all schedulers must compute identical start times
through identical ``max()`` chains, not merely close ones — this is what lets
``simulate_job`` treat the backend choice as a pure performance knob.
"""

from dataclasses import dataclass
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine
from repro.sim.opbatch import OpBatch, row_from_simop
from repro.sim.ops import OpKind, SimOp, next_op_id
from repro.training.simulation import simulate_job

RESOURCES = ("cpu", "gpu", "link", "pcie.h2d", "pcie.d2h")


@dataclass(frozen=True)
class _SeedScheduled:
    op_id: int
    start: float
    end: float


def _seed_list_scheduler(
    resources: tuple[str, ...],
    submissions: list[SimOp],
    release_times: dict[int, float],
) -> list[_SeedScheduled]:
    """The seed algorithm: per-pop scan over all resource queues (reference)."""
    queues: dict[str, deque[SimOp]] = {name: deque() for name in resources}
    for op in submissions:
        queues[op.resource].append(op)
    finished: dict[int, float] = {}
    resource_free = {name: 0.0 for name in resources}
    scheduled: list[_SeedScheduled] = []

    remaining = len(submissions)
    while remaining:
        best: tuple[float, str, SimOp] | None = None
        for name, queue in queues.items():
            if not queue:
                continue
            head = queue[0]
            if any(dep not in finished for dep in head.deps):
                continue
            deps_end = max((finished[dep] for dep in head.deps), default=0.0)
            release = release_times.get(head.op_id, 0.0)
            start = max(resource_free[name], deps_end, release)
            if best is None or start < best[0] or (start == best[0] and name < best[1]):
                best = (start, name, head)
        assert best is not None, "reference scheduler deadlocked on a valid DAG"
        start, name, op = best
        queues[name].popleft()
        end = start + op.duration
        finished[op.op_id] = end
        resource_free[name] = end
        scheduled.append(_SeedScheduled(op_id=op.op_id, start=start, end=end))
        remaining -= 1

    scheduled.sort(key=lambda item: (item.start, item.op_id))
    return scheduled


# ------------------------------------------------------------------- harness


def _as_batch(submissions: list[SimOp], release_times: dict[int, float]) -> OpBatch:
    """The same operations as op-batch rows (same ids, same order)."""
    batch = OpBatch()
    batch.rows.extend(row_from_simop(op) for op in submissions)
    batch.release_times = {
        op_id: release for op_id, release in release_times.items() if release > 0
    }
    return batch


def _engine(resources: tuple[str, ...] = RESOURCES) -> SimEngine:
    engine = SimEngine()
    for name in resources:
        engine.add_resource(name)
    return engine


def assert_all_schedulers_agree(
    submissions: list[SimOp],
    release_times: dict[int, float] | None = None,
    resources: tuple[str, ...] = RESOURCES,
) -> list[tuple[int, float, float]]:
    """Schedule the DAG four ways and assert byte-identical results.

    Returns the agreed ``(op id, start, end)`` triples so callers can make
    additional assertions about the schedule itself.
    """
    release_times = release_times or {}

    eager = _engine(resources)
    for op in submissions:
        eager.submit(op, not_before=release_times.get(op.op_id, 0.0))
    heap_eager = [(i.op.op_id, i.start, i.end) for i in eager.run().ops]

    batch = _as_batch(submissions, release_times)
    heap_batch = [(i.op.op_id, i.start, i.end)
                  for i in _engine(resources).run_batch(batch, validate=True).ops]
    vector = [(i.op.op_id, i.start, i.end)
              for i in _engine(resources).run_vector(batch, validate=True).ops]

    reference = [(i.op_id, i.start, i.end)
                 for i in _seed_list_scheduler(resources, submissions, release_times)]

    # Exact float equality on purpose: every scheduler must compute identical
    # start times through identical max() chains, not merely close ones.
    assert heap_eager == reference, "heap eager path diverged from the seed reference"
    assert heap_batch == reference, "heap batch path diverged from the seed reference"
    assert vector == reference, "vector kernel diverged from the seed reference"
    return reference


# ------------------------------------------------------------- DAG generator


_DURATIONS = st.one_of(
    st.just(0.0),  # zero-duration ops: ready-heap ties and zero-width intervals
    st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
)


@st.composite
def _dags(draw, max_ops: int = 40, min_resources: int = 1):
    """A randomized DAG: (submissions, release_times, resources).

    Covers single-resource chains (``num_resources == 1``), diamond and fan-in
    dependency shapes (with duplicate ids), explicit same-resource chains,
    zero-duration ops and ``not_before`` release times.
    """
    num_resources = draw(st.integers(min_resources, len(RESOURCES)))
    resources = RESOURCES[:num_resources]
    num_ops = draw(st.integers(1, max_ops))
    submissions: list[SimOp] = []
    release_times: dict[int, float] = {}
    for index in range(num_ops):
        deps: tuple[int, ...] = ()
        if submissions:
            shape = draw(st.sampled_from(("independent", "chain", "fan_in", "diamond")))
            if shape == "chain":
                # Often a *same-resource* chain: dependency on the previous op.
                deps = (submissions[-1].op_id,)
            elif shape == "fan_in":
                count = draw(st.integers(1, min(4, len(submissions))))
                deps = tuple(
                    submissions[draw(st.integers(0, len(submissions) - 1))].op_id
                    for _ in range(count)
                )  # duplicates allowed on purpose
            elif shape == "diamond" and len(submissions) >= 2:
                left = draw(st.integers(0, len(submissions) - 1))
                right = draw(st.integers(0, len(submissions) - 1))
                deps = (submissions[left].op_id, submissions[right].op_id)
        op = SimOp(
            name=f"op{index}",
            kind=OpKind.GPU_COMPUTE,
            resource=resources[draw(st.integers(0, num_resources - 1))],
            duration=draw(_DURATIONS),
            deps=deps,
        )
        submissions.append(op)
        if draw(st.booleans()):
            release_times[op.op_id] = draw(
                st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False)
            )
    return submissions, release_times, resources


# ------------------------------------------------------------------- tests


@settings(max_examples=80, deadline=None)
@given(_dags())
def test_all_schedulers_match_seed_reference_exactly(case):
    """Randomized DAGs schedule byte-identically under all four schedulers."""
    submissions, release_times, resources = case
    assert_all_schedulers_agree(submissions, release_times, resources)


@settings(max_examples=40, deadline=None)
@given(_dags(min_resources=1, max_ops=25))
def test_single_resource_dags_are_pure_fifo(case):
    """With one resource the agreed schedule must follow submission order."""
    submissions, release_times, _ = case
    resources = RESOURCES[:1]
    single: list[SimOp] = []
    remapped: dict[int, int] = {}
    for op in submissions:
        clone = SimOp(name=op.name, kind=op.kind, resource=resources[0],
                      duration=op.duration,
                      deps=tuple(remapped[dep] for dep in op.deps))
        remapped[op.op_id] = clone.op_id
        single.append(clone)
    releases = {remapped[op_id]: value for op_id, value in release_times.items()}
    triples = assert_all_schedulers_agree(single, releases, resources)
    scheduled_ids = [op_id for op_id, _, _ in triples]
    assert scheduled_ids == sorted(scheduled_ids), "single-resource order is FIFO"


def test_schedulers_match_on_duplicate_deps():
    """Duplicate dependency ids behave identically in every scheduler."""
    producer = SimOp("p", OpKind.GPU_COMPUTE, "gpu", 2.0)
    consumer = SimOp(
        "c", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(producer.op_id, producer.op_id)
    )
    triples = assert_all_schedulers_agree([producer, consumer])
    assert triples == [(producer.op_id, 0.0, 2.0), (consumer.op_id, 2.0, 3.0)]


def test_schedulers_match_on_cross_resource_chain():
    """A ping-pong chain across resources with release times matches exactly."""
    ops: list[SimOp] = []
    release: dict[int, float] = {}
    previous: SimOp | None = None
    for index in range(12):
        op = SimOp(
            name=f"chain{index}",
            kind=OpKind.H2D if index % 2 else OpKind.D2H,
            resource=RESOURCES[index % len(RESOURCES)],
            duration=0.25 * (index % 3),
            deps=(previous.op_id,) if previous is not None else (),
        )
        ops.append(op)
        if index % 4 == 0:
            release[op.op_id] = 0.5 * index
        previous = op
    assert_all_schedulers_agree(ops, release)


def test_schedulers_match_on_gapped_and_shuffled_op_ids():
    """Non-consecutive, non-monotonic op ids schedule identically everywhere.

    Builder batches draw consecutive ids, which the vector kernel detects and
    resolves with an offset; this case forces its general ``searchsorted``
    dependency-resolution path instead: ids have gaps (ops created and
    discarded between rows) and the submission order does not follow id order
    (ops created out of order, then submitted interleaved).
    """
    SimOp("burn0", OpKind.GPU_COMPUTE, "gpu", 1.0)  # id gap before the DAG
    late = SimOp("late", OpKind.GPU_COMPUTE, "gpu", 1.5)
    SimOp("burn1", OpKind.GPU_COMPUTE, "gpu", 1.0)  # id gap inside the DAG
    early = SimOp("early", OpKind.CPU_UPDATE, "cpu", 0.5)
    fan_in = SimOp(
        "fan_in", OpKind.D2H, "pcie.d2h", 0.25, deps=(late.op_id, early.op_id)
    )
    tail = SimOp("tail", OpKind.H2D, "pcie.h2d", 0.0, deps=(fan_in.op_id,))
    # Submission order deliberately disagrees with id order (late has a lower
    # id than early but is submitted after it).
    submissions = [early, late, fan_in, tail]
    assert sorted(op.op_id for op in submissions) != [op.op_id for op in submissions]
    triples = assert_all_schedulers_agree(submissions, {early.op_id: 0.75})
    assert triples[-1] == (tail.op_id, 1.75, 1.75)


@settings(max_examples=25, deadline=None)
@given(_dags(max_ops=20), st.data())
def test_schedulers_match_with_shuffled_id_allocation(case, data):
    """Randomized DAGs whose id allocation order differs from submission order.

    Ids are drawn in a permuted order (with gaps burned in between), so the
    vector kernel's consecutive-id shortcut cannot apply and the general
    ``searchsorted`` dependency-resolution path is exercised on every example.
    """
    submissions, release_times, resources = case
    order = data.draw(st.permutations(range(len(submissions))))
    new_ids: dict[int, int] = {}
    for index in order:
        if data.draw(st.booleans()):
            next_op_id()  # burn an id: gaps as well as shuffled allocation
        new_ids[index] = next_op_id()
    id_map = {submissions[i].op_id: new_ids[i] for i in range(len(submissions))}
    rebuilt = [
        SimOp(name=op.name, kind=op.kind, resource=op.resource, duration=op.duration,
              deps=tuple(id_map[dep] for dep in op.deps), op_id=new_ids[index])
        for index, op in enumerate(submissions)
    ]
    releases = {id_map[op_id]: value for op_id, value in release_times.items()}
    assert_all_schedulers_agree(rebuilt, releases, resources)


def test_schedulers_match_on_zero_duration_diamond():
    """A zero-duration diamond (fan-out + fan-in ties) matches exactly."""
    top = SimOp("top", OpKind.GPU_COMPUTE, "gpu", 0.0)
    left = SimOp("left", OpKind.CPU_UPDATE, "cpu", 0.0, deps=(top.op_id,))
    right = SimOp("right", OpKind.H2D, "pcie.h2d", 1.0, deps=(top.op_id,))
    bottom = SimOp(
        "bottom", OpKind.GPU_COMPUTE, "gpu", 0.5, deps=(left.op_id, right.op_id)
    )
    triples = assert_all_schedulers_agree([top, left, right, bottom])
    assert triples[-1] == (bottom.op_id, 1.0, 1.5)


# ------------------------------------------------ pipeline-shaped topologies
#
# The ``repro.pipeline`` lowering emits a characteristic DAG shape the random
# generator above rarely produces: long cross-resource chains (a microbatch's
# forward walks every stage resource with a SEND/RECV link hop between each)
# and send/recv fan-in (a compute op depending on both its same-stage
# predecessor chain and a zero-duration RECV barrier fed from another
# resource).  These cases pin that shape explicitly — first as a randomized
# synthetic topology, then through the real lowering.


@st.composite
def _pipeline_dags(draw, max_stages: int = 4, max_microbatches: int = 5):
    """A synthetic pipeline topology over stage + link resources.

    Per microbatch: an F chain down the stages and a B chain back up, each hop
    via SEND (on a link resource) -> RECV (zero-duration, on the consuming
    stage) -> compute, so every compute op past stage 0 is a fan-in of its
    RECV and the per-stage FIFO order.
    """
    stages = draw(st.integers(2, max_stages))
    microbatches = draw(st.integers(1, max_microbatches))
    resources = tuple(f"stage{i}" for i in range(stages)) + tuple(
        f"link{i}" for i in range(stages - 1)
    )
    durations = [draw(_DURATIONS) for _ in range(3)]  # f, b, comm
    f_dur, b_dur, comm_dur = durations
    ops: list[SimOp] = []

    def emit(name, kind, resource, duration, deps):
        op = SimOp(name=name, kind=kind, resource=resource,
                   duration=duration, deps=deps)
        ops.append(op)
        return op

    for mb in range(microbatches):
        previous = None
        for stage in range(stages):  # forward chain down the stages
            deps: tuple[int, ...] = ()
            if previous is not None:
                send = emit(f"sendF{mb}@{stage - 1}", OpKind.D2D,
                            f"link{stage - 1}", comm_dur, (previous.op_id,))
                recv = emit(f"recvF{mb}@{stage}", OpKind.BARRIER,
                            f"stage{stage}", 0.0, (send.op_id,))
                deps = (recv.op_id,)
            previous = emit(f"F{mb}@{stage}", OpKind.GPU_COMPUTE,
                            f"stage{stage}", f_dur, deps)
        for stage in reversed(range(stages)):  # backward chain back up
            deps = (previous.op_id,)
            if stage < stages - 1:
                send = emit(f"sendB{mb}@{stage + 1}", OpKind.D2D,
                            f"link{stage}", comm_dur, (previous.op_id,))
                recv = emit(f"recvB{mb}@{stage}", OpKind.BARRIER,
                            f"stage{stage}", 0.0, (send.op_id,))
                deps = (recv.op_id,)
            previous = emit(f"B{mb}@{stage}", OpKind.GPU_COMPUTE,
                            f"stage{stage}", b_dur, deps)
    return ops, resources


@settings(max_examples=40, deadline=None)
@given(_pipeline_dags())
def test_schedulers_match_on_pipeline_shaped_topologies(case):
    """Long cross-resource chains with send/recv fan-in agree bit for bit."""
    ops, resources = case
    assert_all_schedulers_agree(ops, {}, resources)


def test_schedulers_match_on_lowered_pipeline_schedules():
    """The real ``repro.pipeline`` lowering agrees across all four schedulers."""
    from repro.pipeline import (
        PipelineTiming,
        build_schedule,
        lower_schedule,
        pipeline_resource_names,
    )

    timing = PipelineTiming(f_seconds=1.0, b_seconds=1.5, w_seconds=0.5,
                            comm_seconds=0.25, comm_bytes=1 << 20)
    for name in ("gpipe", "1f1b", "zb"):
        schedule = build_schedule(name, stages=3, microbatches=4, timing=timing)
        lowered = lower_schedule(schedule, timing)
        resources = tuple(pipeline_resource_names(3))
        submissions = [
            SimOp(name=row[0], kind=row[1], resource=row[2], duration=row[3],
                  deps=row[4], phase=row[5], subgroup=row[6],
                  payload_bytes=row[7], gpu_mem_delta=row[8], op_id=row[9])
            for row in lowered.batch.rows
        ]
        assert_all_schedulers_agree(submissions, {}, resources)


# --------------------------------------------------- policy resolution paths
#
# The harness above proves the *backends* identical on raw DAGs; this section
# extends it through ``simulate_job``'s policy resolution: every way a caller
# can select a scheduler — explicit policy, auto above/below threshold,
# environment, configure() context, deprecated keyword — must land on the
# same byte-identical schedule, or the policy layer added semantics it must
# never have.


def _policy_resolution_paths(monkeypatch):
    """(label, callable) pairs covering every scheduler-resolution path."""
    from repro.runtime import ExecutionPolicy, configure

    def via_env(job):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "vector")
        try:
            return simulate_job(job, 1)
        finally:
            monkeypatch.delenv("REPRO_SIM_SCHEDULER")

    def via_context(job):
        with configure(scheduler="vector"):
            return simulate_job(job, 1)

    def via_auto_above(job):
        with configure(auto_vector_threshold=1):
            return simulate_job(job, 1)

    def via_auto_below(job):
        with configure(auto_vector_threshold=10**9):
            return simulate_job(job, 1)

    # The deprecated scheduler_backend= kwarg is deliberately absent here:
    # internal callers are fully migrated to policy=, and the shim's own
    # agreement with the policy path is pinned by the dedicated regression
    # test (test_runtime_policy.test_legacy_kwargs_warn_and_match_policy_path).
    return [
        ("policy-heap", lambda job: simulate_job(job, 1, policy=ExecutionPolicy(scheduler="heap"))),
        ("policy-vector", lambda job: simulate_job(job, 1, policy=ExecutionPolicy(scheduler="vector"))),
        ("auto-above-threshold", via_auto_above),
        ("auto-below-threshold", via_auto_below),
        ("env", via_env),
        ("context", via_context),
    ]


def test_simulate_job_resolution_paths_are_schedule_identical(monkeypatch):
    """All resolution paths (arg/context/env/auto/legacy) agree bit for bit."""
    from repro.sim.ops import reset_op_counter
    from repro.training.config import TrainingJobConfig

    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    monkeypatch.delenv("REPRO_SIM_OP_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_AUTO_VECTOR_THRESHOLD", raising=False)
    job = TrainingJobConfig(model="7B", strategy="deep-optimizer-states",
                            check_memory=False).resolve()
    reference = None
    selected = {}
    for label, run in _policy_resolution_paths(monkeypatch):
        reset_op_counter()
        result = run(job)
        triples = [(item.op.op_id, item.start, item.end) for item in result.schedule.ops]
        if reference is None:
            reference = triples
        else:
            assert triples == reference, f"path {label!r} diverged from the reference"
        selected[label] = result.resolved_policy.scheduler
    # The auto paths really exercised both sides of the threshold.
    assert selected["auto-above-threshold"] == "vector"
    assert selected["auto-below-threshold"] == "heap"
    assert selected["policy-heap"] == "heap"
    assert selected["env"] == "vector"
