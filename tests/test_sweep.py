"""Tests for the scenario-sweep subsystem: specs, runner, cache, results."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.base import model_sweep, run_training, training_sweep
from repro.sweep import Scenario, SweepRunner, SweepSpec, run_sweep
from repro.training.metrics import TrainingReport


def _product(*, x, y=1, tag=""):
    """Module-level worker (picklable) used by the runner tests."""
    return x * y


def _record_call(*, log_path, x):
    """Worker with an observable side effect, to prove cache hits skip execution."""
    with open(log_path, "a") as handle:
        handle.write(f"{x}\n")
    return x * 2


# ---------------------------------------------------------------------- spec


def test_spec_row_major_scenario_order():
    spec = SweepSpec.build({"a": (1, 2), "b": ("x", "y")}, base={"c": 0})
    params = [scenario.as_dict() for scenario in spec.scenarios()]
    assert params == [
        {"c": 0, "a": 1, "b": "x"},
        {"c": 0, "a": 1, "b": "y"},
        {"c": 0, "a": 2, "b": "x"},
        {"c": 0, "a": 2, "b": "y"},
    ]
    assert spec.num_scenarios == 4
    assert spec.axis_names == ("a", "b")


def test_spec_rejects_bad_declarations():
    with pytest.raises(ConfigurationError):
        SweepSpec.build({})
    with pytest.raises(ConfigurationError):
        SweepSpec.build({"a": ()})
    with pytest.raises(ConfigurationError):
        SweepSpec.build({"a": (1,)}, base={"a": 2})
    with pytest.raises(ConfigurationError):
        SweepSpec.build({"a": ([1, 2],)})  # non-scalar axis value
    with pytest.raises(ConfigurationError):
        SweepSpec.build({"a": (1,)}, base={"b": object()})


def test_scenario_hash_is_order_independent_and_value_sensitive():
    first = Scenario.from_params({"a": 1, "b": "x"})
    second = Scenario.from_params({"b": "x", "a": 1})
    third = Scenario.from_params({"a": 2, "b": "x"})
    assert first.config_hash() == second.config_hash()
    assert first.config_hash() != third.config_hash()
    assert first.key(["b", "a"]) == ("x", 1)
    assert "a=1" in first.label()


# ---------------------------------------------------------------------- runner


def test_runner_serial_preserves_scenario_order():
    result = run_sweep(_product, {"x": (3, 1, 2)}, base={"y": 10})
    assert result.values() == [30, 10, 20]
    assert result.keyed("x") == {3: 30, 1: 10, 2: 20}
    assert result.cache_misses == 3 and result.cache_hits == 0


def test_runner_parallel_jobs_match_serial(tmp_path):
    spec = SweepSpec.build({"x": tuple(range(6))}, base={"y": 7})
    serial = SweepRunner(_product, jobs=1).run(spec)
    parallel = SweepRunner(_product, jobs=2).run(spec)
    assert parallel.values() == serial.values()
    assert parallel.jobs == 2


def test_runner_rejects_local_worker_for_parallel_runs():
    def local_worker(*, x):
        return x

    with pytest.raises(ConfigurationError):
        SweepRunner(local_worker, jobs=2)
    # Serial execution of a local worker is fine.
    result = SweepRunner(local_worker, jobs=1).run(SweepSpec.build({"x": (1,)}))
    assert result.values() == [1]


def test_cache_hit_skips_execution(tmp_path):
    log = tmp_path / "calls.log"
    axes = {"x": (1, 2, 3)}
    base = {"log_path": str(log)}
    first = run_sweep(_record_call, axes, base=base, use_cache=True, cache_dir=tmp_path)
    assert first.values() == [2, 4, 6]
    assert len(log.read_text().splitlines()) == 3

    second = run_sweep(_record_call, axes, base=base, use_cache=True, cache_dir=tmp_path)
    assert second.values() == [2, 4, 6]
    assert second.cache_hits == 3 and second.cache_misses == 0
    assert all(record.from_cache for record in second.records)
    # The worker never ran again.
    assert len(log.read_text().splitlines()) == 3


def test_cache_disabled_recomputes(tmp_path):
    log = tmp_path / "calls.log"
    axes = {"x": (5,)}
    base = {"log_path": str(log)}
    run_sweep(_record_call, axes, base=base, use_cache=False, cache_dir=tmp_path)
    run_sweep(_record_call, axes, base=base, use_cache=False, cache_dir=tmp_path)
    assert len(log.read_text().splitlines()) == 2


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    runner = SweepRunner(_product, use_cache=True, cache_dir=tmp_path)
    spec = SweepSpec.build({"x": (4,)}, base={"y": 2})
    runner.run(spec)
    entries = list(tmp_path.glob("*.pkl"))
    assert len(entries) == 1
    entries[0].write_bytes(b"not a pickle")
    result = runner.run(spec)
    assert result.values() == [8]
    assert result.cache_misses == 1


def test_result_json_export(tmp_path):
    result = run_sweep(_product, {"x": (1, 2)}, base={"y": 3})
    path = result.save_json(tmp_path / "out" / "sweep.json")
    data = json.loads(path.read_text())
    assert data["cache_misses"] == 2
    assert [entry["params"]["x"] for entry in data["scenarios"]] == [1, 2]
    assert [entry["value"] for entry in data["scenarios"]] == [3, 6]
    assert all(entry["config_hash"] for entry in data["scenarios"])


def test_result_keyed_rejects_duplicates():
    result = run_sweep(_product, {"x": (1, 2)}, base={"y": 3})
    with pytest.raises(ConfigurationError):
        result.keyed("y")  # same y value for every scenario


# ---------------------------------------------------------------------- training integration


def test_training_sweep_matches_direct_run():
    reports = training_sweep(
        {"model": ("7B",), "strategy": ("zero3-offload",)},
        base={"iterations": 2},
    )
    report = reports[("7B", "zero3-offload")]
    assert isinstance(report, TrainingReport)
    direct = run_training(model="7B", strategy="zero3-offload", iterations=2)
    assert report.iteration_seconds == pytest.approx(direct.iteration_seconds)


def test_training_sweep_parallel_matches_serial():
    axes = {"strategy": ("zero3-offload", "deep-optimizer-states")}
    base = {"model": "7B", "iterations": 2}
    serial = training_sweep(axes, base=base, jobs=1)
    parallel = training_sweep(axes, base=base, jobs=2)
    for strategy in axes["strategy"]:
        assert parallel[strategy].iteration_seconds == pytest.approx(
            serial[strategy].iteration_seconds
        )


def test_numeric_sweep_runs_tiny_models_through_runner():
    from repro.experiments.base import numeric_sweep

    results = numeric_sweep(
        {"strategy": ("zero3-offload", "deep-optimizer-states")},
        base={"model": "nano", "steps": 2, "seed": 3},
    )
    zero3 = results["zero3-offload"]
    dos = results["deep-optimizer-states"]
    assert zero3["steps"] == dos["steps"] == 2
    # The numerical-equivalence claim holds grid-wide: identical losses.
    assert zero3["final_loss"] == dos["final_loss"]
    assert zero3["initial_loss"] == dos["initial_loss"]


def test_numeric_worker_rejects_paper_scale_models():
    from repro.training.numeric import run_numeric_training

    with pytest.raises(ConfigurationError):
        run_numeric_training(model="20B")
    with pytest.raises(ConfigurationError):
        run_numeric_training(model="nano", steps=0)


def test_model_sweep_zeroes_static_fraction_for_zero3():
    reports = model_sweep(
        ["zero3-offload", "twinflow"],
        models=("7B",),
        static_gpu_fraction=0.3,
        iterations=2,
    )
    zero3 = reports[("7B", "zero3-offload")]
    twinflow = reports[("7B", "twinflow")]
    assert zero3.job["static_gpu_fraction"] == 0.0
    assert twinflow.job["static_gpu_fraction"] == pytest.approx(0.3)
