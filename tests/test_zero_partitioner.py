"""Tests for rank/subgroup partitioning, including coverage invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.zero.partitioner import (
    SubgroupSpec,
    build_subgroups,
    partition_evenly,
    partition_model,
    validate_partition,
)


def test_partition_evenly_basic():
    assert partition_evenly(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert partition_evenly(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_partition_evenly_edge_cases():
    assert partition_evenly(0, 3) == [(0, 0), (0, 0), (0, 0)]
    assert partition_evenly(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]
    with pytest.raises(ConfigurationError):
        partition_evenly(-1, 2)
    with pytest.raises(ConfigurationError):
        partition_evenly(10, 0)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 100_000), st.integers(1, 16))
def test_partition_evenly_properties(total, parts):
    ranges = partition_evenly(total, parts)
    assert len(ranges) == parts
    sizes = [stop - start for start, stop in ranges]
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    # Contiguity.
    for (previous_start, previous_stop), (start, stop) in zip(ranges, ranges[1:]):
        assert start == previous_stop


def test_build_subgroups_sizes_and_indices():
    specs = build_subgroups(rank=1, rank_range=(100, 350), subgroup_size=100)
    assert [spec.num_params for spec in specs] == [100, 100, 50]
    assert [spec.index for spec in specs] == [0, 1, 2]
    assert specs[0].start == 100 and specs[-1].stop == 350
    assert all(spec.rank == 1 for spec in specs)


def test_build_subgroups_validation():
    with pytest.raises(ConfigurationError):
        build_subgroups(0, (0, 10), 0)
    with pytest.raises(ConfigurationError):
        build_subgroups(0, (10, 5), 3)


def test_subgroup_spec_validation():
    with pytest.raises(ConfigurationError):
        SubgroupSpec(index=0, rank=0, start=5, stop=5)
    with pytest.raises(ConfigurationError):
        SubgroupSpec(index=-1, rank=0, start=0, stop=5)
    spec = SubgroupSpec(index=0, rank=0, start=3, stop=9)
    assert spec.num_params == 6
    assert spec.slice == slice(3, 9)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 50_000), st.integers(1, 8), st.integers(1, 5_000))
def test_partition_model_covers_every_parameter_exactly_once(total, dp, subgroup_size):
    partition = partition_model(total, dp, subgroup_size)
    validate_partition(partition, total)
    for rank, specs in partition.items():
        for spec in specs:
            assert spec.rank == rank
            assert spec.num_params <= subgroup_size


def test_partition_model_paper_configuration():
    """20B parameters on 4 GPUs with 100M subgroups -> ~55 subgroups per rank."""
    total = 21_940_000_000
    partition = partition_model(total, 4, 100_000_000)
    per_rank = [len(specs) for specs in partition.values()]
    assert all(54 <= count <= 56 for count in per_rank)


def test_validate_partition_detects_gaps():
    partition = partition_model(1000, 2, 100)
    # Remove a subgroup to create a gap.
    partition[0] = partition[0][:-1]
    with pytest.raises(ConfigurationError):
        validate_partition(partition, 1000)


def test_partition_model_rejects_empty_model():
    with pytest.raises(ConfigurationError):
        partition_model(0, 2, 10)
