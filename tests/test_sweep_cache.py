"""Tests for the sweep cache manifest: round-trip, stale detection, eviction."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.sweep import SweepRunner, SweepSpec, run_sweep
from repro.sweep.cache import (
    CACHE_VERSION,
    cache_stats,
    evict_cache,
    format_stats,
    load_manifest,
    manifest_path,
    record_entries,
)


def _double(*, x, y=1):
    """Module-level worker (picklable) for cache tests."""
    return x * 2 + y


def _sweep(tmp_path, values=(1, 2, 3)):
    return run_sweep(_double, {"x": tuple(values)}, use_cache=True, cache_dir=tmp_path)


# ---------------------------------------------------------------------- manifest


def test_manifest_records_every_stored_entry(tmp_path):
    _sweep(tmp_path)
    manifest = load_manifest(tmp_path)
    assert len(manifest["entries"]) == 3
    pickles = {path.name for path in tmp_path.glob("*.pkl")}
    assert set(manifest["entries"]) == pickles
    for filename, entry in manifest["entries"].items():
        assert entry["worker"] == f"{_double.__module__}.{_double.__qualname__}"
        assert entry["cache_version"] == CACHE_VERSION
        assert entry["config_hash"] in filename
        assert entry["params"]["x"] in (1, 2, 3)
        assert entry["size_bytes"] == (tmp_path / filename).stat().st_size
        assert entry["created_at"]


def test_manifest_survives_cache_hits_and_new_entries(tmp_path):
    _sweep(tmp_path)
    first = load_manifest(tmp_path)
    # A fully cached re-run must not rewrite (or lose) manifest records.
    result = _sweep(tmp_path)
    assert result.cache_hits == 3
    assert load_manifest(tmp_path) == first
    # New scenarios extend the manifest without touching old entries.
    _sweep(tmp_path, values=(1, 2, 3, 4))
    merged = load_manifest(tmp_path)
    assert len(merged["entries"]) == 4
    assert set(first["entries"]) <= set(merged["entries"])


def test_corrupt_manifest_is_an_empty_manifest(tmp_path):
    manifest_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
    manifest_path(tmp_path).write_text("{not json")
    assert load_manifest(tmp_path) == {"format": 1, "entries": {}}
    # And a sweep on top of the corrupt file repairs it.
    _sweep(tmp_path)
    assert len(load_manifest(tmp_path)["entries"]) == 3


def test_record_entries_requires_file_key(tmp_path):
    with pytest.raises(ConfigurationError):
        record_entries(tmp_path, [{"worker": "w"}])


# ---------------------------------------------------------------------- stats


def test_cache_stats_counts_live_entries_and_bytes(tmp_path):
    _sweep(tmp_path)
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 3
    assert stats["total_bytes"] == sum(p.stat().st_size for p in tmp_path.glob("*.pkl"))
    assert stats["workers"] == {f"{_double.__module__}.{_double.__qualname__}": 3}
    assert stats["stale_count"] == 0
    rendered = format_stats(stats)
    assert "live entries: 3" in rendered and str(tmp_path) in rendered


def test_cache_stats_detects_all_three_stale_classes(tmp_path):
    _sweep(tmp_path)
    pickles = sorted(tmp_path.glob("*.pkl"))
    # 1. manifest entry whose pickle vanished
    pickles[0].unlink()
    # 2. orphaned pickle the manifest does not know about
    orphan = tmp_path / "orphan-entry.pkl"
    orphan.write_bytes(b"x")
    # 3. entry recorded under an older cache version
    manifest = load_manifest(tmp_path)
    manifest["entries"][pickles[1].name]["cache_version"] = CACHE_VERSION - 1
    manifest_path(tmp_path).write_text(json.dumps(manifest))

    stats = cache_stats(tmp_path)
    assert stats["entries"] == 1
    assert stats["stale"]["missing_files"] == [pickles[0].name]
    assert stats["stale"]["orphaned_files"] == [orphan.name]
    assert stats["stale"]["version_mismatch"] == [pickles[1].name]
    assert stats["stale_count"] == 3


def test_cache_stats_on_missing_directory(tmp_path):
    stats = cache_stats(tmp_path / "never-created")
    assert stats["entries"] == 0 and stats["stale_count"] == 0


# ---------------------------------------------------------------------- eviction


def test_evict_stale_removes_only_stale_entries(tmp_path):
    _sweep(tmp_path)
    pickles = sorted(tmp_path.glob("*.pkl"))
    pickles[0].unlink()
    (tmp_path / "orphan-entry.pkl").write_bytes(b"xx")
    manifest = load_manifest(tmp_path)
    manifest["entries"][pickles[1].name]["cache_version"] = CACHE_VERSION - 1
    manifest_path(tmp_path).write_text(json.dumps(manifest))

    report = evict_cache(tmp_path, mode="stale")
    assert report["removed_files"] == 2  # orphan + version mismatch
    assert report["dropped_entries"] == 2  # missing file + version mismatch
    assert report["freed_bytes"] > 0

    stats = cache_stats(tmp_path)
    assert stats["stale_count"] == 0
    assert stats["entries"] == 1  # the one untouched live entry survived

    # The surviving entry still serves cache hits.
    result = _sweep(tmp_path)
    assert result.cache_hits == 1 and result.cache_misses == 2


def test_evict_all_clears_cache_and_manifest(tmp_path):
    _sweep(tmp_path)
    report = evict_cache(tmp_path, mode="all")
    assert report["removed_files"] == 3 and report["dropped_entries"] == 3
    assert list(tmp_path.glob("*.pkl")) == []
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 0 and stats["stale_count"] == 0
    result = _sweep(tmp_path)
    assert result.cache_misses == 3


def test_evict_rejects_unknown_mode(tmp_path):
    with pytest.raises(ConfigurationError):
        evict_cache(tmp_path, mode="everything")


def test_no_cache_run_writes_no_manifest(tmp_path):
    runner = SweepRunner(_double, use_cache=False, cache_dir=tmp_path)
    runner.run(SweepSpec.build({"x": (1,)}))
    assert not manifest_path(tmp_path).exists()


# ------------------------------------------------------------- crash recovery


def test_truncated_manifest_recovers(tmp_path):
    """A manifest cut off mid-write (crashed sweep) is a miss, not a crash."""
    _sweep(tmp_path)
    full = manifest_path(tmp_path).read_text()
    manifest_path(tmp_path).write_text(full[: len(full) // 2])
    assert load_manifest(tmp_path) == {"format": 1, "entries": {}}
    # Stats and eviction survive the truncated file too: every pickle is now an
    # orphan, and a stale eviction clears them without touching anything else.
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 0
    assert len(stats["stale"]["orphaned_files"]) == 3
    report = evict_cache(tmp_path, mode="stale")
    assert report["removed_files"] == 3
    # The next sweep recomputes and repairs the manifest.
    result = _sweep(tmp_path)
    assert result.cache_misses == 3
    assert len(load_manifest(tmp_path)["entries"]) == 3


def test_manifest_that_is_not_an_object_is_empty(tmp_path):
    """Valid JSON of the wrong shape (e.g. a bare list) is an empty manifest."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    manifest_path(tmp_path).write_text(json.dumps(["not", "a", "manifest"]))
    assert load_manifest(tmp_path) == {"format": 1, "entries": {}}
    manifest_path(tmp_path).write_text(json.dumps({"format": 1, "entries": [1, 2]}))
    assert load_manifest(tmp_path) == {"format": 1, "entries": {}}


def test_recorded_entry_with_interrupted_pickle_write(tmp_path):
    """Manifest says the entry exists, but the pickle write was interrupted.

    The atomic store makes this window small (temp file + ``os.replace``), but a
    crash can still leave a recorded entry whose pickle is truncated — or, with
    the orders flipped by a concurrent eviction, missing entirely.  Both must
    load as cache *misses* and be recomputed, never crash or serve garbage.
    """
    _sweep(tmp_path)
    pickles = sorted(tmp_path.glob("*.pkl"))
    # Truncate one pickle mid-stream and delete another outright.
    pickles[0].write_bytes(pickles[0].read_bytes()[:3])
    pickles[1].unlink()

    result = _sweep(tmp_path)
    assert result.cache_hits == 1  # only the untouched entry survives
    assert result.cache_misses == 2
    # The recompute rewrote both pickles; everything is a hit again.
    assert _sweep(tmp_path).cache_hits == 3
    assert cache_stats(tmp_path)["stale_count"] == 0


def test_orphan_temp_files_from_killed_store_are_ignored(tmp_path):
    """A ``.tmp`` file left by a killed atomic store never enters the stats."""
    _sweep(tmp_path)
    (tmp_path / "entry.pkl.tmp").write_bytes(b"partial")
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 3
    assert stats["stale_count"] == 0
    report = evict_cache(tmp_path, mode="stale")
    assert report["removed_files"] == 0


def test_evict_cache_on_empty_directory(tmp_path):
    """Evicting an empty (but existing) cache directory is a clean no-op."""
    for mode in ("stale", "all"):
        report = evict_cache(tmp_path, mode=mode)
        assert report == {"removed_files": 0, "freed_bytes": 0, "dropped_entries": 0}


def test_evict_cache_on_missing_directory(tmp_path):
    """Evicting a directory that does not exist yet must not crash."""
    target = tmp_path / "never-created"
    report = evict_cache(target, mode="stale")
    assert report == {"removed_files": 0, "freed_bytes": 0, "dropped_entries": 0}
    report = evict_cache(target, mode="all")
    assert report["removed_files"] == 0


def test_evict_cache_on_manifest_less_directory(tmp_path):
    """Pickles without any manifest (pre-manifest cache) evict as orphans."""
    _sweep(tmp_path)
    manifest_path(tmp_path).unlink()
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 0 and len(stats["stale"]["orphaned_files"]) == 3
    report = evict_cache(tmp_path, mode="stale")
    assert report["removed_files"] == 3 and report["dropped_entries"] == 0
    assert list(tmp_path.glob("*.pkl")) == []
