"""Tests for the sweep cache manifest: round-trip, stale detection, eviction."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.sweep import SweepRunner, SweepSpec, run_sweep
from repro.sweep.cache import (
    CACHE_VERSION,
    cache_stats,
    evict_cache,
    format_stats,
    load_manifest,
    manifest_path,
    record_entries,
)


def _double(*, x, y=1):
    """Module-level worker (picklable) for cache tests."""
    return x * 2 + y


def _sweep(tmp_path, values=(1, 2, 3)):
    return run_sweep(_double, {"x": tuple(values)}, use_cache=True, cache_dir=tmp_path)


# ---------------------------------------------------------------------- manifest


def test_manifest_records_every_stored_entry(tmp_path):
    _sweep(tmp_path)
    manifest = load_manifest(tmp_path)
    assert len(manifest["entries"]) == 3
    pickles = {path.name for path in tmp_path.glob("*.pkl")}
    assert set(manifest["entries"]) == pickles
    for filename, entry in manifest["entries"].items():
        assert entry["worker"] == f"{_double.__module__}.{_double.__qualname__}"
        assert entry["cache_version"] == CACHE_VERSION
        assert entry["config_hash"] in filename
        assert entry["params"]["x"] in (1, 2, 3)
        assert entry["size_bytes"] == (tmp_path / filename).stat().st_size
        assert entry["created_at"]


def test_manifest_survives_cache_hits_and_new_entries(tmp_path):
    _sweep(tmp_path)
    first = load_manifest(tmp_path)
    # A fully cached re-run must not rewrite (or lose) manifest records.
    result = _sweep(tmp_path)
    assert result.cache_hits == 3
    assert load_manifest(tmp_path) == first
    # New scenarios extend the manifest without touching old entries.
    _sweep(tmp_path, values=(1, 2, 3, 4))
    merged = load_manifest(tmp_path)
    assert len(merged["entries"]) == 4
    assert set(first["entries"]) <= set(merged["entries"])


def test_corrupt_manifest_is_an_empty_manifest(tmp_path):
    manifest_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
    manifest_path(tmp_path).write_text("{not json")
    assert load_manifest(tmp_path) == {"format": 1, "entries": {}}
    # And a sweep on top of the corrupt file repairs it.
    _sweep(tmp_path)
    assert len(load_manifest(tmp_path)["entries"]) == 3


def test_record_entries_requires_file_key(tmp_path):
    with pytest.raises(ConfigurationError):
        record_entries(tmp_path, [{"worker": "w"}])


# ---------------------------------------------------------------------- stats


def test_cache_stats_counts_live_entries_and_bytes(tmp_path):
    _sweep(tmp_path)
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 3
    assert stats["total_bytes"] == sum(p.stat().st_size for p in tmp_path.glob("*.pkl"))
    assert stats["workers"] == {f"{_double.__module__}.{_double.__qualname__}": 3}
    assert stats["stale_count"] == 0
    rendered = format_stats(stats)
    assert "live entries: 3" in rendered and str(tmp_path) in rendered


def test_cache_stats_detects_all_three_stale_classes(tmp_path):
    _sweep(tmp_path)
    pickles = sorted(tmp_path.glob("*.pkl"))
    # 1. manifest entry whose pickle vanished
    pickles[0].unlink()
    # 2. orphaned pickle the manifest does not know about
    orphan = tmp_path / "orphan-entry.pkl"
    orphan.write_bytes(b"x")
    # 3. entry recorded under an older cache version
    manifest = load_manifest(tmp_path)
    manifest["entries"][pickles[1].name]["cache_version"] = CACHE_VERSION - 1
    manifest_path(tmp_path).write_text(json.dumps(manifest))

    stats = cache_stats(tmp_path)
    assert stats["entries"] == 1
    assert stats["stale"]["missing_files"] == [pickles[0].name]
    assert stats["stale"]["orphaned_files"] == [orphan.name]
    assert stats["stale"]["version_mismatch"] == [pickles[1].name]
    assert stats["stale_count"] == 3


def test_cache_stats_on_missing_directory(tmp_path):
    stats = cache_stats(tmp_path / "never-created")
    assert stats["entries"] == 0 and stats["stale_count"] == 0


# ---------------------------------------------------------------------- eviction


def test_evict_stale_removes_only_stale_entries(tmp_path):
    _sweep(tmp_path)
    pickles = sorted(tmp_path.glob("*.pkl"))
    pickles[0].unlink()
    (tmp_path / "orphan-entry.pkl").write_bytes(b"xx")
    manifest = load_manifest(tmp_path)
    manifest["entries"][pickles[1].name]["cache_version"] = CACHE_VERSION - 1
    manifest_path(tmp_path).write_text(json.dumps(manifest))

    report = evict_cache(tmp_path, mode="stale")
    assert report["removed_files"] == 2  # orphan + version mismatch
    assert report["dropped_entries"] == 2  # missing file + version mismatch
    assert report["freed_bytes"] > 0

    stats = cache_stats(tmp_path)
    assert stats["stale_count"] == 0
    assert stats["entries"] == 1  # the one untouched live entry survived

    # The surviving entry still serves cache hits.
    result = _sweep(tmp_path)
    assert result.cache_hits == 1 and result.cache_misses == 2


def test_evict_all_clears_cache_and_manifest(tmp_path):
    _sweep(tmp_path)
    report = evict_cache(tmp_path, mode="all")
    assert report["removed_files"] == 3 and report["dropped_entries"] == 3
    assert list(tmp_path.glob("*.pkl")) == []
    stats = cache_stats(tmp_path)
    assert stats["entries"] == 0 and stats["stale_count"] == 0
    result = _sweep(tmp_path)
    assert result.cache_misses == 3


def test_evict_rejects_unknown_mode(tmp_path):
    with pytest.raises(ConfigurationError):
        evict_cache(tmp_path, mode="everything")


def test_no_cache_run_writes_no_manifest(tmp_path):
    runner = SweepRunner(_double, use_cache=False, cache_dir=tmp_path)
    runner.run(SweepSpec.build({"x": (1,)}))
    assert not manifest_path(tmp_path).exists()
