"""Tests for numeric collectives and their cost model."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.zero.collectives import (
    allgather,
    allgather_seconds,
    allreduce_mean,
    allreduce_seconds,
    broadcast,
    reduce_scatter_mean,
    reduce_scatter_seconds,
)
from repro.zero.partitioner import partition_evenly


def test_allreduce_mean_averages_across_ranks(rng):
    arrays = [rng.normal(size=32).astype(np.float32) for _ in range(4)]
    mean = allreduce_mean(arrays)
    np.testing.assert_allclose(mean, np.stack(arrays).mean(axis=0), rtol=1e-6)


def test_allreduce_mean_validation():
    with pytest.raises(ConfigurationError):
        allreduce_mean([])
    with pytest.raises(ConfigurationError):
        allreduce_mean([np.zeros(3), np.zeros(4)])


def test_reduce_scatter_then_allgather_is_allreduce(rng):
    arrays = [rng.normal(size=40).astype(np.float32) for _ in range(4)]
    partitions = partition_evenly(40, 4)
    shards = reduce_scatter_mean(arrays, partitions)
    assert [shard.size for shard in shards] == [10, 10, 10, 10]
    gathered = allgather(shards)
    np.testing.assert_allclose(gathered, allreduce_mean(arrays), rtol=1e-6)


def test_reduce_scatter_requires_matching_partitions(rng):
    arrays = [rng.normal(size=10) for _ in range(2)]
    with pytest.raises(ConfigurationError):
        reduce_scatter_mean(arrays, [(0, 5)])


def test_broadcast_copies(rng):
    value = rng.normal(size=8)
    copies = broadcast(value, 3)
    assert len(copies) == 3
    copies[0][:] = 0
    assert not np.allclose(copies[1], 0)
    with pytest.raises(ConfigurationError):
        broadcast(value, 0)


def test_allgather_requires_shards():
    with pytest.raises(ConfigurationError):
        allgather([])


def test_ring_cost_model_scaling():
    bandwidth = 100e9
    single = allgather_seconds(1e9, 1, bandwidth)
    assert single == 0.0
    two = allgather_seconds(1e9, 2, bandwidth)
    four = allgather_seconds(1e9, 4, bandwidth)
    assert two == pytest.approx(0.5 * 1e9 / bandwidth)
    assert four == pytest.approx(0.75 * 1e9 / bandwidth)
    assert reduce_scatter_seconds(1e9, 4, bandwidth) == four
    assert allreduce_seconds(1e9, 4, bandwidth) == pytest.approx(2 * four)


def test_ring_cost_model_validation():
    with pytest.raises(ConfigurationError):
        allgather_seconds(-1, 4, 1e9)
    with pytest.raises(ConfigurationError):
        allgather_seconds(1e9, 0, 1e9)
    with pytest.raises(ConfigurationError):
        allgather_seconds(1e9, 4, 0)
