"""Tests for the experiment harness: every table/figure runner produces the paper's shapes.

Heavier experiments are run with a reduced model set so the suite stays fast; the
full-scale versions live in ``benchmarks/``.
"""

import pytest

from repro.experiments import EXPERIMENT_MODULES
from repro.experiments.base import ExperimentResult, run_experiment
from repro.common.errors import ConfigurationError


def test_registry_covers_every_table_and_figure():
    expected = ({"table1", "table2", "eq1"} | {f"fig{i}" for i in range(2, 18)}
                | {"pipe1", "pipe2"})
    assert set(EXPERIMENT_MODULES) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError):
        run_experiment("fig99")


def test_table1_matches_paper_throughputs():
    result = run_experiment("table1")
    assert isinstance(result, ExperimentResult)
    by_kind = {row["transfer"]: row for row in result.rows}
    assert by_kind["G32<->G16"]["measured_gbps"] > by_kind["H32<->H16"]["measured_gbps"]
    assert by_kind["H16<->G16"]["measured_gbps"] > by_kind["H32->G16"]["measured_gbps"]
    for row in result.rows:
        assert 0.5 <= row["ratio_vs_paper"] <= 1.5


def test_table2_sizes_track_paper_within_15_percent():
    result = run_experiment("table2")
    for row in result.rows:
        assert row["fp16_model_gib"] == pytest.approx(row["paper_fp16_gb"], rel=0.15)
        assert row["fp32_optimizer_gib"] == pytest.approx(row["paper_fp32_opt_gb"], rel=0.15)


def test_eq1_selects_stride_2_on_both_testbeds():
    result = run_experiment("eq1", num_subgroups=20)
    selected = {row["machine"]: row["selected_stride"] for row in result.rows}
    assert all(stride == 2 for stride in selected.values())
    h100_rows = [row for row in result.rows if row["machine"] == "jlse-4xh100"]
    throughputs = {row["candidate_stride"]: row["update_throughput_bpps"] for row in h100_rows}
    assert throughputs[2] > throughputs[3] > throughputs[4] > throughputs[5]


def test_fig2_subgroup_size_insensitivity():
    result = run_experiment("fig2", models=("7B",), iterations=2)
    assert result.rows[0]["max_relative_spread"] < 0.05


def test_fig3_memory_fluctuation():
    result = run_experiment("fig3", model="7B")
    by_config = {row["configuration"]: row for row in result.rows}
    full = by_config["full_activations"]
    ckpt = by_config["activation_checkpointing"]
    assert full["forward_peak_gib"] > ckpt["forward_peak_gib"]
    assert full["update_phase_gib"] < full["forward_peak_gib"]
    assert ckpt["memory_freed_by_backward_gib"] > 0


def test_fig4_pcie_underutilised():
    result = run_experiment("fig4", model="7B")
    for row in result.rows:
        assert row["h2d_fraction_of_peak"] < 0.5
        assert row["d2h_fraction_of_peak"] < 0.5


def test_fig5_interleaving_faster_than_twinflow():
    result = run_experiment("fig5")
    by_strategy = {row["strategy"]: row for row in result.rows}
    assert (
        by_strategy["deep-optimizer-states"]["update_complete_s"]
        < by_strategy["twinflow"]["update_complete_s"]
    )
    assert by_strategy["deep-optimizer-states"]["d2h_busy_s"] > 0


def test_fig6_flush_gap_order_of_magnitude():
    result = run_experiment("fig6", model="7B")
    baseline, dos = result.rows
    assert baseline["per_subgroup_ms"] / dos["per_subgroup_ms"] > 5
    assert baseline["backward_phase_s"] > dos["backward_phase_s"]


def test_fig7_speedup_band():
    result = run_experiment("fig7", models=("7B", "20B"), iterations=3)
    for row in result.rows:
        assert 1.7 <= row["speedup"] <= 3.0
        assert row["dos_backward_s"] < row["zero3_backward_s"]
        assert row["dos_update_s"] < row["zero3_update_s"]


def test_fig8_update_throughput_improvement():
    result = run_experiment("fig8", models=("7B",), iterations=3)
    row = result.rows[0]
    assert row["dos_bpps"] > row["zero3_bpps"]
    assert 1.3 <= row["improvement"] <= 2.6


def test_fig9_end_to_end_speedup_matches_iteration_speedup():
    result = run_experiment("fig9", models=("7B",))
    row = result.rows[0]
    assert row["speedup"] == pytest.approx(row["per_iteration_speedup"], rel=0.1)
    assert row["speedup"] > 1.7


def test_fig10_and_fig11_twinflow_ratio_sweep():
    update = run_experiment("fig10", model="7B", fractions=(0.0, 0.3))
    assert update.rows[1]["twinflow_update_s"] < update.rows[0]["twinflow_update_s"]
    assert all(row["speedup"] > 1.3 for row in update.rows)
    iteration = run_experiment("fig11", model="7B", fractions=(0.0, 0.3))
    assert all(row["speedup"] > 1.3 for row in iteration.rows)


def test_fig12_twinflow_20_percent_band():
    result = run_experiment("fig12", models=("7B",))
    assert 1.3 <= result.rows[0]["speedup"] <= 2.6


def test_fig13_microbatch_oom_at_16():
    result = run_experiment("fig13", model="20B", microbatches=(1, 8, 16))
    by_mb = {row["microbatch"]: row for row in result.rows}
    assert by_mb[16]["zero3_iteration_s"] == "OOM"
    assert by_mb[8]["zero3_iteration_s"] != "OOM"
    assert by_mb[8]["zero3_tflops"] > by_mb[1]["zero3_tflops"]
    assert by_mb[1]["speedup"] > 1.6


def test_fig14_cpu_scaling_plateau():
    result = run_experiment(
        "fig14", model="7B", cores=(10, 38, 48), machines=("jlse-4xh100",)
    )
    rows = {row["cpu_cores_per_gpu"]: row for row in result.rows}
    assert rows[10]["zero3_iteration_s"] > rows[38]["zero3_iteration_s"]
    assert rows[48]["zero3_iteration_s"] == pytest.approx(rows[38]["zero3_iteration_s"], rel=0.02)
    # Deep Optimizer States stays well ahead at every core count and is much less
    # sensitive to the number of CPU cores than the CPU-bound baseline.
    assert all(row["speedup"] > 1.8 for row in result.rows)
    zero3_sensitivity = rows[10]["zero3_iteration_s"] - rows[38]["zero3_iteration_s"]
    dos_sensitivity = rows[10]["dos_iteration_s"] - rows[38]["dos_iteration_s"]
    assert zero3_sensitivity > dos_sensitivity


def test_fig14_declares_a_machine_grid():
    result = run_experiment("fig14", model="7B", cores=(10, 38))
    machines = {row["machine"] for row in result.rows}
    assert machines == {"jlse-4xh100", "polaris-4xa100"}
    # Interleaving beats the blocking baseline on every machine in the grid, and the
    # better-provisioned H100 node runs the same job faster than the A100 node.
    assert all(row["speedup"] > 1.0 for row in result.rows)
    by_key = {(row["machine"], row["cpu_cores_per_gpu"]): row for row in result.rows}
    assert (
        by_key[("jlse-4xh100", 38)]["dos_iteration_s"]
        < by_key[("polaris-4xa100", 38)]["dos_iteration_s"]
    )


def test_fig15_resource_utilisation_ordering():
    result = run_experiment("fig15", model="7B")
    rows = {row["gpu_update_fraction"]: row for row in result.rows}
    assert rows["50%"]["gpu_utilization"] > rows["0%"]["gpu_utilization"]
    assert rows["50%"]["pcie_d2h_gbps"] > rows["0%"]["pcie_d2h_gbps"]
    assert rows["50%"]["tflops"] > rows["33%"]["tflops"] > rows["0%"]["tflops"]


def test_fig16_50_percent_is_optimal():
    result = run_experiment("fig16", models=("7B",))
    row = result.rows[0]
    assert row["machine"] == "jlse-4xh100"
    assert row["best_fraction"] == "50%"
    assert row["dos_50%_bpps"] >= row["dos_33%_bpps"] >= row["dos_25%_bpps"]
    assert row["dos_50%_bpps"] > row["zero3_bpps"]


def test_fig16_validates_on_both_testbeds():
    result = run_experiment("fig16", models=("7B",))
    by_machine = {row["machine"]: row for row in result.rows}
    assert set(by_machine) == {"jlse-4xh100", "4xv100"}
    v100 = by_machine["4xv100"]
    # Paper reference columns exist only for the machine the paper measured.
    assert "paper_50%_bpps" not in v100
    # The §5.4 machine still prefers interleaving over the blocking baseline.
    assert v100["dos_50%_bpps"] > v100["zero3_bpps"]


def test_fig17_speedup_decreases_with_data_parallelism():
    result = run_experiment("fig17", models=("7B",), degrees=(1, 4))
    row = result.rows[0]
    assert row["speedup_dp1"] > row["speedup_dp4"]
    assert row["speedup_dp1"] >= 3.0
    assert row["speedup_dp4"] >= 1.8


def test_experiment_result_formatting():
    result = run_experiment("table2")
    text = result.format()
    assert "[table2]" in text
    assert "model" in text
    assert result.column("model") == ["7B", "8.3B", "10B", "13B", "20B"]
