"""Cluster executor integration tests: real daemons, real kills, real leases.

Every test here launches genuine ``repro worker`` subprocesses against an
in-process coordinator (the same :class:`~repro.dispatch.ClusterExecutor` a
``repro sweep --executor cluster`` run uses) and asserts the one invariant the
dispatch layer exists to uphold: **placement and failure never change
values**.  The fault-injection matrix from the issue:

* a worker process hard-killed mid-task → task re-queued on a survivor,
  sweep result byte-identical to serial;
* a silent worker (heartbeats disabled, task wedged) → lease expiry, retry on
  the second worker;
* deterministic task exception → immediate :class:`DispatchTaskError` with
  the remote traceback (no retry: it would fail identically);
* infrastructure retries exhausted → :class:`DispatchError`;
* a sweep interrupted mid-run → completed scenarios already in the cache
  manifest, and a re-run resumes from them.

Faults are injected by :class:`repro.middleware.FaultInjectionMiddleware`,
declared as a ``fault:...`` spec on the sweep's middleware stack: the chain
ships to the daemons inside the pickled policy and fires deterministically on
whichever worker draws the targeted task index.  The workers themselves
(``tests/dispatch_workers.py``) are plain deterministic functions, so the
armed cluster run and the unarmed serial baseline share identical scenario
parameters *and* identical worker code — which is what makes byte-identical
JSON a meaningful assertion.
"""

import json
import os
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import dispatch_workers
from repro.dispatch import (
    ClusterExecutor,
    DispatchError,
    DispatchTaskError,
    Task,
    WorkerClient,
)
from repro.runtime import ExecutionPolicy
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.cache import load_manifest

REPO_ROOT = Path(__file__).resolve().parents[1]
FAST_LEASE = 1.0  # seconds; every test keeps leases short so expiry is quick


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def daemons():
    """Launch ``repro worker`` subprocesses; terminate whatever survives."""
    procs: list[subprocess.Popen] = []

    def spawn(port: int, worker_id: str, *, heartbeat: float | None = None,
              host: str = "127.0.0.1") -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        # Daemons never arm middleware from their own environment: the chain
        # (fault injection included) arrives inside the coordinator's policy.
        env.pop("REPRO_MIDDLEWARE", None)
        connect = f"[{host}]:{port}" if ":" in host else f"{host}:{port}"
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", connect,
                   "--id", worker_id, "--retry-for", "30"]
        if heartbeat is not None:
            command += ["--heartbeat", str(heartbeat)]
        proc = subprocess.Popen(command, env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
        procs.append(proc)
        return proc

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            proc.kill()
            proc.wait(timeout=10)


def _cluster_runner(worker, port: int, *, workers: int = 2, events: list | None = None,
                    lease_timeout: float = FAST_LEASE, max_retries: int | None = None,
                    progress=None, **kwargs) -> SweepRunner:
    options = {
        "bind": f"127.0.0.1:{port}",
        "lease_timeout": lease_timeout,
        "worker_wait_timeout": 30.0,
    }
    if max_retries is not None:  # deprecated knob; the retry spec is the norm
        options["max_retries"] = max_retries
    if events is not None:
        options["on_event"] = events.append
    kwargs.setdefault("use_cache", False)
    return SweepRunner(worker, executor="cluster", workers=workers,
                       executor_options=options, progress=progress, **kwargs)


def _result_json(result) -> bytes:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True).encode()


# ----------------------------------------------------------------- happy path


def test_cluster_sweep_is_byte_identical_to_serial(daemons, tmp_path):
    spec = SweepSpec.build({"x": (1, 2, 3), "y": (10, 20)})
    port = _free_port()
    daemons(port, "w1")
    daemons(port, "w2")
    progress: list = []
    result = _cluster_runner(dispatch_workers.echo_params, port,
                             progress=progress.append).run(spec)
    serial = SweepRunner(dispatch_workers.echo_params, executor="serial",
                         use_cache=False).run(spec)
    assert _result_json(result) == _result_json(serial)
    # Provenance: every scenario was computed remotely, by the fleet we launched.
    assert {event["worker"] for event in progress} <= {"w1", "w2"}
    assert all(not event["cached"] for event in progress)
    assert len(progress) == spec.num_scenarios


def test_cluster_ships_the_policy_to_daemons(daemons):
    spec = SweepSpec.build({"x": (1, 2)})
    port = _free_port()
    daemons(port, "w1")
    result = _cluster_runner(dispatch_workers.policy_probe, port, workers=1,
                             scheduler="vector").run(spec)
    for value in result.values():
        # The daemon resolved the coordinator's decisions at the context level.
        assert value["scheduler"] == "vector"
        assert value["sources"] == ["context"]


# ------------------------------------------------------------ fault injection


def test_worker_killed_mid_task_is_retried_elsewhere(daemons):
    """One daemon hard-exits mid-task; the sweep still matches serial, byte for byte.

    The fault is a middleware spec: ``index=1`` targets the x=2 scenario and
    the default ``times=1`` arms it for the first delivery attempt only, so
    the re-queued attempt (shipped as ``attempts=2`` in the task frame)
    passes straight through to the worker on the surviving daemon.
    """
    spec = SweepSpec.build({"x": (1, 2, 3, 4)})
    port = _free_port()
    daemons(port, "w1")
    daemons(port, "w2")
    events: list = []
    progress: list = []
    result = _cluster_runner(dispatch_workers.survivor, port,
                             middleware=("fault:mode=crash:index=1",),
                             events=events, progress=progress.append).run(spec)
    # The serial baseline is unarmed: no fault spec on its policy.
    serial = SweepRunner(dispatch_workers.survivor, executor="serial",
                         use_cache=False).run(spec)
    assert _result_json(result) == _result_json(serial)
    kinds = {event["event"] for event in events}
    assert "worker-disconnected" in kinds and "task-requeued" in kinds, \
        "the fault was actually injected"
    retried = [event for event in progress if event["label"].endswith("x=2")]
    assert retried and retried[0]["attempts"] >= 2


def test_silent_worker_lease_expires_and_second_worker_completes(daemons):
    """Heartbeat loss on a wedged task: lease expiry re-queues to the live worker."""
    spec = SweepSpec.build({"x": (1, 2, 3)})
    port = _free_port()
    # Both daemons run without heartbeats, so whichever draws the wedged task
    # loses its lease; only the retry (``attempts=2`` disarms the ``times=1``
    # hang fault) completes promptly — on the other worker.
    daemons(port, "silent-1", heartbeat=0)
    daemons(port, "silent-2", heartbeat=0)
    events: list = []
    progress: list = []
    result = _cluster_runner(dispatch_workers.survivor, port,
                             middleware=("fault:mode=hang:index=0:seconds=30",),
                             events=events, progress=progress.append).run(spec)
    serial = SweepRunner(dispatch_workers.survivor, executor="serial",
                         use_cache=False).run(spec)
    assert _result_json(result) == _result_json(serial)
    expiries = [event for event in events if event["event"] == "lease-expired"]
    assert expiries and expiries[0]["index"] == 0  # the targeted scenario
    hung = [event for event in progress if event["label"].endswith("x=1")]
    assert hung[0]["attempts"] >= 2
    assert hung[0]["worker"] != expiries[0]["worker"], \
        "the retry completed on a different worker than the wedged one"


def test_heartbeats_keep_long_tasks_alive(daemons):
    """A task longer than the lease survives when heartbeats are on."""
    spec = SweepSpec.build({"x": (5,)}, {"delay": 2.5 * FAST_LEASE})
    port = _free_port()
    daemons(port, "steady")  # default heartbeat: lease_timeout / 3
    events: list = []
    result = _cluster_runner(dispatch_workers.slow_echo, port, workers=1,
                             events=events).run(spec)
    assert result.values() == [{"x": 5, "squared": 25}]
    assert not [event for event in events if event["event"] == "lease-expired"]


def test_task_exception_propagates_with_remote_traceback(daemons):
    spec = SweepSpec.build({"x": (7,)})
    port = _free_port()
    daemons(port, "w1")
    with pytest.raises(DispatchTaskError) as excinfo:
        _cluster_runner(dispatch_workers.always_raise, port, workers=1).run(spec)
    assert "x=7" in str(excinfo.value)
    assert "ValueError" in excinfo.value.remote_traceback
    assert excinfo.value.worker_id == "w1"


def test_unserializable_result_fails_fast_with_the_cause(daemons):
    """An unpicklable value is an application error, not worker death.

    Regression: the daemon used to crash on the result send, so the
    coordinator burned the whole retry budget on identical crashes and
    reported a misleading 'worker disconnected' instead of the real cause.
    """
    spec = SweepSpec.build({"x": (3,)})
    port = _free_port()
    proc = daemons(port, "w1")
    with pytest.raises(DispatchTaskError, match="not serializable"):
        _cluster_runner(dispatch_workers.unpicklable_result, port,
                        workers=1).run(spec)
    assert proc.poll() is None, "the daemon survived the bad result"


def test_retry_bound_exhausted_raises_dispatch_error(daemons):
    """``times=0`` crashes every attempt; the bound comes from the retry spec.

    No ``max_retries`` anywhere: the coordinator derives its re-queue bound
    from the policy's ``retry:attempts=1`` middleware spec — one knob for
    worker-side application retries and coordinator-side re-queues alike.
    """
    spec = SweepSpec.build({"x": (1,)})
    port = _free_port()
    daemons(port, "doomed-1")
    daemons(port, "doomed-2")
    with pytest.raises(DispatchError, match="retry bound of 1 exhausted"):
        _cluster_runner(dispatch_workers.survivor, port,
                        middleware=("fault:mode=crash:index=0:times=0",
                                    "retry:attempts=1")).run(spec)


def test_interrupted_sweep_resumes_from_cache_manifest(daemons, tmp_path):
    """Scenarios completed before an interruption are durable and replayed.

    The interruption is a ``fault:mode=raise`` spec targeting the last index:
    an :class:`~repro.middleware.InjectedFault` is an application error, so
    the coordinator fails fast instead of retrying.  The resume run simply
    drops the fault spec from its middleware stack — no marker files.
    """
    cache_dir = tmp_path / "cache"
    spec = SweepSpec.build({"x": (1, 2, 3, 4)})
    port = _free_port()
    daemons(port, "w1")
    daemons(port, "w2")
    with pytest.raises(DispatchTaskError, match="injected fault"):
        _cluster_runner(dispatch_workers.cubed, port,
                        middleware=("fault:mode=raise:index=3:times=0",),
                        use_cache=True, cache_dir=cache_dir).run(spec)
    # Completed scenarios were streamed into the cache *and* its manifest
    # before the failure tore the sweep down.
    durable = load_manifest(cache_dir)["entries"]
    assert durable, "nothing was durable at interruption time"
    assert all(entry["params"]["x"] != 4 for entry in durable.values())

    # Resume serially with the fault spec removed from the stack.  Cached
    # entries replay — cross-executor, thanks to the policy-free cache key —
    # and the final result matches a pure serial run with no cache at all.
    resumed = SweepRunner(dispatch_workers.cubed, executor="serial",
                          use_cache=True, cache_dir=cache_dir).run(spec)
    assert resumed.cache_hits == len(durable)
    assert resumed.cache_misses == spec.num_scenarios - len(durable)
    baseline = SweepRunner(dispatch_workers.cubed, executor="serial",
                           use_cache=False).run(spec)
    assert resumed.values() == baseline.values()


def test_fully_wedged_fleet_raises_instead_of_hanging(daemons):
    """Every worker silent on an expired lease: the sweep must error, not block.

    Regression: a wedged worker keeps its socket open and its lease slot
    occupied, so neither the no-worker failsafe nor dispatch could ever fire —
    the sweep hung forever.
    """
    spec = SweepSpec.build({"x": (1, 2)})
    port = _free_port()
    # One heartbeat-less daemon: it wedges on the targeted scenario, its lease
    # expires, and there is no second worker for the re-queue (or for x=2).
    daemons(port, "wedged", heartbeat=0)
    options = {"bind": f"127.0.0.1:{port}", "lease_timeout": FAST_LEASE,
               "worker_wait_timeout": 2.0}
    runner = SweepRunner(dispatch_workers.survivor, executor="cluster",
                         workers=1, executor_options=options, use_cache=False,
                         middleware=("fault:mode=hang:index=0:seconds=60",))
    with pytest.raises(DispatchError, match="unresponsive"):
        runner.run(spec)


def test_worker_survives_coordinator_vanishing_mid_result():
    """A stale-result send against a closed socket is a clean end of service.

    Regression: the daemon used to crash with an unhandled BrokenPipeError
    when it finished a task after the coordinator had shut down (the exact
    shape of a lease-expired task delivered late).
    """
    client = WorkerClient("127.0.0.1:9", worker_id="stale")  # never dialed
    left, right = socket.socketpair()
    right.close()  # the "coordinator" is gone
    try:
        ok = client._serve_task(left, {
            "type": "task", "task_id": 1, "index": 0,
            "worker": "dispatch_workers:echo_params", "params": {"x": 1},
            "policy": None,
        }, interval=0)
        assert ok is False  # reported as "coordinator went away", not a crash
        assert client.tasks_completed == 0
    finally:
        left.close()


# ------------------------------------------------------------------ lifecycle


def test_unserializable_task_fails_fast_with_the_cause(daemons):
    """A task frame that cannot pickle fails the sweep once, not per-retry."""
    port = _free_port()
    daemons(port, "w1")
    policy = ExecutionPolicy(executor="cluster", workers=1)
    with ClusterExecutor(dispatch_workers.echo_params, policy,
                         bind=f"127.0.0.1:{port}",
                         lease_timeout=FAST_LEASE) as executor:
        with pytest.raises(DispatchError, match="serialize"):
            list(executor.submit([Task(index=0, params={"x": lambda: 1})]))


def test_send_task_against_a_concluded_task_releases_the_worker():
    """Regression: the claimed worker must not starve when its task concluded
    (stale first-wins delivery) between the synchronous claim and the send."""
    import asyncio

    from repro.dispatch.cluster import _Conn, _Round

    executor = ClusterExecutor(dispatch_workers.echo_params, ExecutionPolicy())
    round_ = _Round()
    round_.tasks[0] = Task(index=0, params={"x": 1})
    round_.attempts[0] = 2
    round_.done.add(0)
    executor._round = round_
    conn = _Conn(worker_id="claimed", writer=None, task_id=0)
    asyncio.run(executor._send_task(conn, 0))
    assert conn.task_id is None, "the worker is dispatchable again"


def test_stale_error_from_revoked_lease_defers_to_the_retry():
    """An error frame from a worker whose lease was revoked must not fail the sweep.

    White-box: the coordinator's reaction is pure state-machine logic, so the
    round state is fabricated directly — task re-queued after a lease expiry,
    original holder then reports a (possibly host-local) failure.
    """
    from repro.dispatch.cluster import _Conn, _Round

    executor = ClusterExecutor(dispatch_workers.echo_params, ExecutionPolicy())
    round_ = _Round()
    round_.tasks[0] = Task(index=0, params={"x": 1})
    round_.attempts[0] = 1
    round_.pending.append(0)  # re-queued: no live lease
    executor._round = round_
    conn = _Conn(worker_id="slow", writer=None, task_id=0)
    executor._on_error(conn, {"type": "error", "task_id": 0, "message": "OOM"})
    assert not executor._failed, "stale error must not abort the sweep"
    assert 0 not in round_.done and list(round_.pending) == [0]
    assert conn.task_id is None  # the slow worker is dispatchable again


def test_dispatch_gate_times_out_without_workers():
    policy = ExecutionPolicy(executor="cluster", workers=1)
    with ClusterExecutor(dispatch_workers.echo_params, policy,
                         worker_wait_timeout=0.5, lease_timeout=FAST_LEASE) as executor:
        with pytest.raises(DispatchError, match="waited"):
            list(executor.submit([Task(index=0, params={"x": 1})]))


def test_submit_requires_entered_executor():
    executor = ClusterExecutor(dispatch_workers.echo_params, ExecutionPolicy())
    with pytest.raises(DispatchError, match="context manager"):
        list(executor.submit([Task(index=0, params={})]))


def test_retry_bound_derives_from_the_retry_middleware_spec():
    """The coordinator's re-queue bound is the policy's ``retry`` spec."""
    from repro.dispatch.cluster import DEFAULT_MAX_RETRIES

    policy = ExecutionPolicy(executor="cluster", workers=1,
                             middleware=("timing", "retry:attempts=7"))
    executor = ClusterExecutor(dispatch_workers.echo_params, policy)
    assert executor._max_retries == 7
    bare = ClusterExecutor(dispatch_workers.echo_params, ExecutionPolicy())
    assert bare._max_retries == DEFAULT_MAX_RETRIES


def test_explicit_max_retries_is_deprecated_but_still_wins():
    """Regression for the deprecation shim: the legacy knob warns yet is honored."""
    policy = ExecutionPolicy(executor="cluster", workers=1,
                             middleware=("retry:attempts=5",))
    with pytest.warns(DeprecationWarning, match="max_retries"):
        executor = ClusterExecutor(dispatch_workers.echo_params, policy,
                                   max_retries=1)
    assert executor._max_retries == 1


def test_workers_exit_cleanly_on_coordinator_shutdown(daemons):
    spec = SweepSpec.build({"x": (1, 2)})
    port = _free_port()
    first = daemons(port, "w1")
    second = daemons(port, "w2")
    _cluster_runner(dispatch_workers.echo_params, port).run(spec)
    # The runner closed the executor; the coordinator broadcast shutdown.
    assert first.wait(timeout=10) == 0
    assert second.wait(timeout=10) == 0
    assert "shutdown" in first.stdout.read() + second.stdout.read()


# -------------------------------------------------- bind parsing and teardown


def _ipv6_loopback_available() -> bool:
    try:
        with socket.socket(socket.AF_INET6) as probe:
            probe.bind(("::1", 0))
            return True
    except OSError:
        return False


@pytest.mark.skipif(not _ipv6_loopback_available(),
                    reason="no IPv6 loopback on this host")
def test_cluster_round_trips_over_ipv6_loopback(daemons):
    """Regression for bracket-mangled binds: ``[::1]:PORT`` must carry a real
    sweep end to end — coordinator listening on IPv6, daemon dialing it with
    the same bracketed string the CLI accepts."""
    with socket.socket(socket.AF_INET6) as probe:
        probe.bind(("::1", 0))
        port = probe.getsockname()[1]
    daemons(port, "w6", host="::1")
    spec = SweepSpec.build({"x": (1, 2, 3)})
    runner = SweepRunner(
        dispatch_workers.echo_params, executor="cluster", workers=1,
        use_cache=False,
        executor_options={"bind": f"[::1]:{port}", "worker_wait_timeout": 30.0},
    )
    result = runner.run(spec)
    serial = SweepRunner(dispatch_workers.echo_params, executor="serial",
                         use_cache=False).run(spec)
    assert _result_json(result) == _result_json(serial)


def test_overlapping_submit_raises_a_real_error_not_an_assert():
    """Regression: the overlap guard was a bare ``assert``, stripped under
    ``python -O`` — an overlapping submit() would silently interleave two
    rounds' tasks.  It must be a DispatchError regardless of optimization."""
    policy = ExecutionPolicy(executor="cluster", workers=1)
    with ClusterExecutor(dispatch_workers.echo_params, policy,
                         worker_wait_timeout=30.0,
                         lease_timeout=FAST_LEASE) as executor:
        # No workers ever connect, so the first round stays fully pending.
        executor.submit([Task(index=0, params={"x": 1})])
        with pytest.raises(DispatchError, match="drained"):
            executor.submit([Task(index=1, params={"x": 2})])


def test_close_always_closes_the_loop_and_is_idempotent():
    """Regression: ``close()`` used to re-check ``loop.is_running()`` after the
    join and skip ``loop.close()`` — leaking the loop's selector fd every time
    the thread needed more than an instant to stop."""
    policy = ExecutionPolicy(executor="cluster", workers=1)
    executor = ClusterExecutor(dispatch_workers.echo_params, policy)
    with executor:
        pass
    assert not executor._thread.is_alive()
    assert executor._loop.is_closed()
    executor.close()  # second close is a no-op, not an error


def test_close_warns_and_still_closes_when_the_thread_is_wedged(monkeypatch):
    """A coordinator callback that never returns must not wedge ``close()``:
    it warns, abandons the thread, and still tries to reclaim the loop."""
    import time as time_module

    from repro.dispatch import cluster as cluster_module

    monkeypatch.setattr(cluster_module, "_CLOSE_JOIN_TIMEOUT", 0.2)
    policy = ExecutionPolicy(executor="cluster", workers=1)
    executor = ClusterExecutor(dispatch_workers.echo_params, policy)
    executor.__enter__()
    # Wedge the loop: a blocking callback ignores loop.stop() until it ends.
    executor._loop.call_soon_threadsafe(time_module.sleep, 2.0)
    with pytest.warns(RuntimeWarning, match="did not stop"):
        executor.close()
    # The thread eventually unwedges and the stop takes effect.
    executor._thread.join(timeout=10.0)
    assert not executor._thread.is_alive()
