"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_presets_runs(capsys):
    assert main(["list-presets"]) == 0
    output = capsys.readouterr().out
    assert "20B" in output
    assert "jlse-4xh100" in output
    assert "deep-optimizer-states" in output
    assert "fig7" in output


def test_stride_command_reports_equation1(capsys):
    assert main(["stride", "--machine", "jlse-4xh100"]) == 0
    output = capsys.readouterr().out
    assert "Equation 1 ratio" in output
    assert "Selected stride    : 2" in output


def test_stride_command_with_core_override(capsys):
    assert main(["stride", "--machine", "jlse-4xh100", "--cores-per-gpu", "10"]) == 0
    output = capsys.readouterr().out
    assert "B params/s" in output


def test_compare_command_prints_speedup(capsys):
    code = main(
        [
            "compare",
            "--model", "7B",
            "--iterations", "3",
            "--strategies", "zero3-offload", "deep-optimizer-states",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "iteration_s" in output
    assert "speedup over ZeRO-3 offload" in output


def test_experiment_command_runs_table2(capsys):
    assert main(["experiment", "table2"]) == 0
    output = capsys.readouterr().out
    assert "[table2]" in output
    assert "fp32_optimizer_gib" in output


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "fig99"])


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
