"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_presets_runs(capsys):
    assert main(["list-presets"]) == 0
    output = capsys.readouterr().out
    assert "20B" in output
    assert "jlse-4xh100" in output
    assert "deep-optimizer-states" in output
    assert "fig7" in output


def test_stride_command_reports_equation1(capsys):
    assert main(["stride", "--machine", "jlse-4xh100"]) == 0
    output = capsys.readouterr().out
    assert "Equation 1 ratio" in output
    assert "Selected stride    : 2" in output


def test_stride_command_with_core_override(capsys):
    assert main(["stride", "--machine", "jlse-4xh100", "--cores-per-gpu", "10"]) == 0
    output = capsys.readouterr().out
    assert "B params/s" in output


def test_compare_command_prints_speedup(capsys):
    code = main(
        [
            "compare",
            "--model", "7B",
            "--iterations", "3",
            "--strategies", "zero3-offload", "deep-optimizer-states",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "iteration_s" in output
    assert "speedup over ZeRO-3 offload" in output


def test_experiment_command_runs_table2(capsys):
    assert main(["experiment", "table2"]) == 0
    output = capsys.readouterr().out
    assert "[table2]" in output
    assert "fp32_optimizer_gib" in output


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "fig99"])


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_sweep_command_runs_grid_and_hits_cache(tmp_path, capsys):
    args = [
        "sweep",
        "--models", "7B",
        "--strategies", "zero3-offload,deep-optimizer-states",
        "--iterations", "2",
        "--cache-dir", str(tmp_path),
        "--json", str(tmp_path / "result.json"),
    ]
    assert main(args) == 0
    output = capsys.readouterr().out
    assert "2 scenarios (0 cached, 2 computed)" in output
    assert "iteration_s" in output
    assert (tmp_path / "result.json").exists()

    # A second invocation with the same grid is served entirely from the cache.
    assert main(args[:-2]) == 0
    output = capsys.readouterr().out
    assert "2 scenarios (2 cached, 0 computed)" in output


def test_sweep_command_with_extra_axis_and_jobs(tmp_path, capsys):
    assert main([
        "sweep",
        "--models", "7B",
        "--strategies", "deep-optimizer-states",
        "--axis", "microbatch_size=1,2",
        "--iterations", "2",
        "--jobs", "2",
        "--no-cache",
        "--cache-dir", str(tmp_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "microbatch_size" in output
    assert "2 scenarios (0 cached, 2 computed) with jobs=2" in output


def test_experiment_command_forwards_kwargs(capsys):
    assert main(["experiment", "fig2", "--models", "7B", "--set", "iterations=2"]) == 0
    output = capsys.readouterr().out
    assert "[fig2]" in output
    # Only the requested model ran.
    assert "20B" not in output


def test_experiment_command_rejects_malformed_set():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        main(["experiment", "fig2", "--set", "iterations"])


def test_sweep_command_with_machine_axis_and_cache_stats(tmp_path, capsys):
    assert main([
        "sweep",
        "--models", "7B",
        "--strategies", "deep-optimizer-states",
        "--machines", "jlse-4xh100,4xv100",
        "--iterations", "2",
        "--cache-dir", str(tmp_path),
        "--cache-stats",
    ]) == 0
    output = capsys.readouterr().out
    assert "4xv100" in output and "jlse-4xh100" in output
    assert "2 scenarios (0 cached, 2 computed)" in output
    assert "live entries: 2" in output
    assert "repro.experiments.base.run_training: 2" in output
    # --axis machine=... is the equivalent generic spelling.
    assert main([
        "sweep",
        "--models", "7B",
        "--strategies", "deep-optimizer-states",
        "--axis", "machine=jlse-4xh100,4xv100",
        "--iterations", "2",
        "--cache-dir", str(tmp_path),
    ]) == 0
    assert "2 cached, 0 computed" in capsys.readouterr().out


def test_sweep_command_cache_evict(tmp_path, capsys):
    args = ["sweep", "--models", "7B", "--strategies", "zero3-offload",
            "--iterations", "2", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    capsys.readouterr()
    # Eviction is a maintenance mode: no sweep runs, stats can be chained.
    assert main(["sweep", "--cache-evict", "all", "--cache-stats",
                 "--cache-dir", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert "evicted 1 cache files" in output
    assert "live entries: 0" in output
    assert "scenarios" not in output
    assert list(tmp_path.glob("*.pkl")) == []
    # Bare --cache-evict defaults to the 'stale' mode and removes nothing live.
    assert main(args) == 0
    capsys.readouterr()
    assert main(["sweep", "--cache-evict", "--cache-dir", str(tmp_path)]) == 0
    assert "[stale]" in capsys.readouterr().out
    assert len(list(tmp_path.glob("*.pkl"))) == 1


def test_sweep_command_numeric_executor(tmp_path, capsys):
    assert main([
        "sweep",
        "--executor", "numeric",
        "--models", "nano",
        "--strategies", "zero3-offload,deep-optimizer-states",
        "--iterations", "2",
        "--cache-dir", str(tmp_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "final_loss" in output
    assert "2 scenarios" in output
    # The numerical-equivalence claim, visible from the CLI: both strategies
    # produce the same loss column.
    lines = [line for line in output.splitlines() if line.startswith("nano")]
    assert len(lines) == 2
    assert lines[0].split()[-2] == lines[1].split()[-2]  # final_loss column


def test_sweep_command_numeric_rejects_machines():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        main(["sweep", "--executor", "numeric", "--machines", "jlse-4xh100"])


def test_sweep_worker_flag_replaces_executor_alias(tmp_path, capsys):
    """--worker numeric is the modern spelling of --executor numeric."""
    assert main([
        "sweep",
        "--worker", "numeric",
        "--models", "nano",
        "--strategies", "zero3-offload",
        "--iterations", "2",
        "--cache-dir", str(tmp_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "final_loss" in output


def test_sweep_executor_alias_warns_and_conflicts(capsys):
    # The deprecated alias still parses and routes to the numeric worker...
    args = build_parser().parse_args(["sweep", "--executor", "numeric"])
    assert args.executor == "numeric" and args.worker_kind is None
    # ...but contradicting --worker is an error.
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="conflicts"):
        main(["sweep", "--executor", "numeric", "--worker", "training"])


def test_sweep_parser_accepts_cluster_flags():
    args = build_parser().parse_args([
        "sweep", "--executor", "cluster", "--workers", "2",
        "--bind", "127.0.0.1:7931", "--lease-timeout", "5",
        "--max-retries", "1", "--progress",
    ])
    assert args.executor == "cluster"
    assert args.workers == 2
    assert args.bind == "127.0.0.1:7931"
    assert args.lease_timeout == 5.0
    assert args.max_retries == 1
    assert args.progress


def test_worker_parser_accepts_daemon_flags():
    args = build_parser().parse_args([
        "worker", "--connect", "127.0.0.1:7931", "--id", "w1",
        "--heartbeat", "0", "--retry-for", "30",
    ])
    assert args.connect == "127.0.0.1:7931"
    assert args.worker_id == "w1"
    assert args.heartbeat == 0.0
    assert args.retry_for == 30.0
    with pytest.raises(SystemExit):
        build_parser().parse_args(["worker"])  # --connect is required


def test_sweep_progress_streams_completion_lines(tmp_path, capsys):
    command = [
        "sweep", "--worker", "numeric", "--models", "nano",
        "--strategies", "zero3-offload", "--iterations", "2",
        "--cache-dir", str(tmp_path), "--progress",
    ]
    assert main(command) == 0
    output = capsys.readouterr().out
    assert "[1/1]" in output
    assert "worker=local" in output and "cache=miss" in output
    # A repeat invocation streams the cache hit the same way.
    assert main(command) == 0
    output = capsys.readouterr().out
    assert "worker=cache" in output and "cache=hit" in output


def test_config_json_reports_executor_fields(monkeypatch, capsys):
    import json

    from repro.runtime import POLICY_FIELDS

    # A malformed REPRO_* variable in the invoking shell makes `config` exit 1
    # by design; scrub them all so only the two set below are in play.
    for spec in POLICY_FIELDS.values():
        monkeypatch.delenv(spec.env_var, raising=False)
    monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executor"] == {"value": "cluster", "source": "env"}
    assert payload["workers"] == {"value": 4, "source": "env"}


def test_compare_command_with_no_cache(tmp_path, capsys):
    assert main([
        "compare",
        "--model", "7B",
        "--iterations", "2",
        "--strategies", "zero3-offload", "deep-optimizer-states",
        "--no-cache",
        "--cache-dir", str(tmp_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "speedup over ZeRO-3 offload" in output
    # --no-cache leaves the cache directory untouched.
    assert list(tmp_path.glob("*.pkl")) == []
