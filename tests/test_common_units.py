"""Tests for unit constants and formatting helpers."""

import pytest

from repro.common import units


def test_decimal_constants_are_powers_of_ten():
    assert units.KB == 10**3
    assert units.MB == 10**6
    assert units.GB == 10**9
    assert units.TB == 10**12


def test_binary_constants_are_powers_of_two():
    assert units.KIB == 2**10
    assert units.MIB == 2**20
    assert units.GIB == 2**30


def test_gb_and_gib_conversions_roundtrip():
    assert units.bytes_to_gb(units.gb(3.5)) == pytest.approx(3.5)
    assert units.bytes_to_gib(units.gib(80)) == pytest.approx(80)


def test_gib_is_larger_than_gb():
    assert units.gib(1) > units.gb(1)


def test_format_bytes_selects_suffix():
    assert units.format_bytes(512) == "512 B"
    assert "KiB" in units.format_bytes(4 * units.KIB)
    assert "MiB" in units.format_bytes(3 * units.MIB)
    assert "GiB" in units.format_bytes(2 * units.GIB)
    assert "TiB" in units.format_bytes(5 * units.TIB)


def test_format_duration_scales():
    assert "ns" in units.format_duration(5e-9)
    assert "us" in units.format_duration(5e-6)
    assert "ms" in units.format_duration(5e-3)
    assert units.format_duration(2.5).endswith(" s")
    assert "m " in units.format_duration(125.0)


def test_format_throughput_uses_decimal_gigabytes():
    assert units.format_throughput(55 * units.GB) == "55.00 GB/s"


def test_format_param_throughput():
    assert units.format_param_throughput(8.8e9) == "8.80 B params/s"
