#!/usr/bin/env python3
"""Pipeline-parallel schedules: gpipe vs 1F1B vs zero-bubble.

Builds the same 4-stage / 16-microbatch pipeline scenario under each schedule
family and compares makespan and bubble fraction.  The zero-bubble pass splits
every backward into its input-gradient half (B, on the inter-stage critical
chain) and its weight-gradient half (W, deferrable), then fills fill/drain
idle time with W work — so its bubble sits strictly below 1F1B on this grid.

Run with:  python examples/pipeline_schedules.py
"""

from repro.pipeline import (
    SCHEDULES,
    build_schedule,
    simulate_pipeline,
    timing_from_presets,
)

STAGES = 4
MICROBATCHES = 16


def main() -> None:
    timing = timing_from_presets(stages=STAGES)
    print(f"Scenario: {STAGES} stages x {MICROBATCHES} microbatches "
          f"(20B on jlse-4xh100)")
    print(f"Per-microbatch stage timing: F={timing.f_seconds:.4f}s "
          f"B={timing.b_seconds:.4f}s W={timing.w_seconds:.4f}s "
          f"comm={timing.comm_seconds:.6f}s")
    print()

    print(f"{'schedule':<8} {'ops':>5} {'makespan':>10} {'ideal':>10} "
          f"{'bubble':>8}  description")
    results = {}
    for entry in SCHEDULES.entries():
        result = simulate_pipeline(
            schedule=entry.name, stages=STAGES, microbatches=MICROBATCHES
        )
        results[entry.name] = result
        print(f"{entry.name:<8} {result.op_count:>5} "
              f"{result.makespan_seconds:>9.4f}s {result.ideal_seconds:>9.4f}s "
              f"{result.bubble_fraction:>8.4f}  {entry.description}")

    saved = results["1f1b"].makespan_seconds - results["zb"].makespan_seconds
    print()
    print(f"zb saves {saved:.4f}s over 1f1b "
          f"({saved / results['1f1b'].makespan_seconds:.1%} of the iteration).")

    # The schedule IR is inspectable before lowering: per-stage op orders.
    schedule = build_schedule("zb", stages=2, microbatches=3, timing=timing)
    print()
    print("zb order on a tiny 2-stage x 3-microbatch grid (per stage):")
    for stage, order in enumerate(schedule.orders):
        print(f"  stage {stage}: " + " ".join(str(node) for node in order))


if __name__ == "__main__":
    main()
