#!/usr/bin/env python3
"""Checkpoint and resume a fine-tuning run of the miniature LLM.

The paper points out that host-offloaded optimizer state makes checkpointing cheap:
each rank owns a disjoint slice of the FP32 state in host memory and can flush it to
persistent storage independently of the GPUs.  This example trains the miniature model
for a few steps with Deep Optimizer States, snapshots the sharded optimizer, continues
training, then restores the snapshot into a fresh trainer and replays the remaining
steps — verifying that the resumed run reproduces the uninterrupted one exactly.

Run with:  python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.checkpoint import load_optimizer_checkpoint, save_optimizer_checkpoint
from repro.model.presets import TINY_MODELS
from repro.training.numeric import MiniTrainer

MODEL = "nano"
TOTAL_STEPS = 6
CHECKPOINT_AFTER = 3
SEED = 2024


def make_batches(config, count, seed):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(count):
        tokens = rng.integers(0, config.vocab_size, size=(2, config.sequence_length))
        targets = rng.integers(0, config.vocab_size, size=(2, config.sequence_length))
        batches.append((tokens, targets))
    return batches


def make_trainer():
    return MiniTrainer(
        TINY_MODELS[MODEL],
        strategy="deep-optimizer-states",
        data_parallel_degree=1,
        subgroup_size=4096,
        seed=SEED,
    )


def main() -> None:
    config = TINY_MODELS[MODEL]
    batches = make_batches(config, TOTAL_STEPS, seed=3)

    # Uninterrupted reference run.
    reference = make_trainer()
    reference_losses = [reference.train_step([batch]) for batch in batches]

    # Interrupted run: checkpoint midway, then resume into a fresh trainer.
    trainer = make_trainer()
    first_half = [trainer.train_step([batch]) for batch in batches[:CHECKPOINT_AFTER]]
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "optimizer-ckpt"
        manifest = save_optimizer_checkpoint(trainer.optimizer, checkpoint_dir)
        print(f"Checkpointed after step {manifest.step_count} "
              f"({len(manifest.rank_files)} rank file(s) under {checkpoint_dir.name}/)")

        resumed = make_trainer()
        load_optimizer_checkpoint(resumed.optimizer, checkpoint_dir)
        resumed.model.load_flat_parameters(
            resumed.optimizer.gathered_fp16_parameters().astype(np.float32)
        )
        second_half = [resumed.train_step([batch]) for batch in batches[CHECKPOINT_AFTER:]]

    resumed_losses = first_half + second_half
    print("\n step | uninterrupted loss | checkpoint+resume loss")
    print(" -----|--------------------|-----------------------")
    for step, (a, b) in enumerate(zip(reference_losses, resumed_losses), start=1):
        marker = "  <- resumed here" if step == CHECKPOINT_AFTER + 1 else ""
        print(f"  {step:3d} | {a:18.6f} | {b:21.6f}{marker}")

    if not np.allclose(reference_losses, resumed_losses, rtol=0, atol=0):
        raise SystemExit("ERROR: resumed run diverged from the uninterrupted run!")
    print("\nResumed training matches the uninterrupted run exactly.")


if __name__ == "__main__":
    main()
