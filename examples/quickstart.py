#!/usr/bin/env python3
"""Quickstart: compare DeepSpeed ZeRO-3 offload, TwinFlow and Deep Optimizer States.

Simulates fine-tuning the 20B-parameter model of the paper on a 4xH100 node with the
optimizer state offloaded to host memory, and prints the per-iteration phase breakdown,
update throughput and achieved TFLOPs for each offloading strategy — the headline
comparison of the paper (Figures 7 and 8).

Run with:  python examples/quickstart.py
"""

from repro import TrainingJobConfig, Trainer, optimal_update_stride
from repro.hardware import JLSE_H100_NODE, ThroughputProfile
from repro.training.metrics import format_table
from repro.training.trainer import compare_strategies


def main() -> None:
    profile = ThroughputProfile.from_machine(JLSE_H100_NODE)
    stride = optimal_update_stride(profile)
    print("Testbed             :", JLSE_H100_NODE.description)
    print("Equation 1 stride   :", stride, f"(every {stride}-th subgroup updates on the GPU)")
    print()

    base = TrainingJobConfig(
        model="20B",
        machine="jlse-4xh100",
        microbatch_size=1,
        subgroup_size=100_000_000,
        # TwinFlow's "user-supplied ratio": 20% of the optimizer subgroups stay on the GPU
        # (the same setting Figure 12 uses); ZeRO-3 ignores it, Deep Optimizer States
        # interleaves on top of it.
        static_gpu_fraction=0.2,
        iterations=10,
        warmup_iterations=2,
    )
    reports = compare_strategies(base, ["zero3-offload", "twinflow", "deep-optimizer-states"])

    rows = []
    for name, report in reports.items():
        steady = report.steady_state
        rows.append(
            {
                "strategy": name,
                "forward_s": round(steady.forward_seconds, 2),
                "backward_s": round(steady.backward_seconds, 2),
                "update_s": round(steady.update_seconds, 2),
                "iteration_s": round(steady.total_seconds, 2),
                "update_Bparams/s": round(report.update_throughput_pps / 1e9, 1),
                "TFLOPs": round(report.achieved_tflops, 1),
            }
        )
    print(format_table(rows))
    print()

    zero3 = reports["zero3-offload"]
    dos = reports["deep-optimizer-states"]
    print(f"Deep Optimizer States speedup over ZeRO-3 offload : {dos.speedup_over(zero3):.2f}x")
    print(f"Update-throughput improvement                      : "
          f"{dos.update_throughput_pps / zero3.update_throughput_pps:.2f}x")
    print("(The paper reports 2-2.5x faster iterations and ~1.7x faster updates.)")


if __name__ == "__main__":
    main()
