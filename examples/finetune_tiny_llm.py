#!/usr/bin/env python3
"""Fine-tune a miniature LLM end to end through the interleaved offloaded optimizer.

This is the numeric (correctness) path of the reproduction: a small NumPy transformer
is trained on a synthetic corpus with data parallelism, ZeRO-3 subgroup sharding, FP16
gradients and an offloaded mixed-precision Adam — once with the all-CPU baseline
executor and once with the Deep Optimizer States interleaved executor.  The two runs
produce *identical* losses, demonstrating the paper's claim that interleaving the
update phase across CPU and GPU does not change the training result.

Run with:  python examples/finetune_tiny_llm.py
"""

import numpy as np

from repro.model.presets import TINY_MODELS
from repro.training.data import SyntheticCorpus, TokenDataset, WordTokenizer, make_dataloader
from repro.training.numeric import MiniTrainer

MODEL = "tiny-1M"
STEPS = 8
DATA_PARALLEL = 2
SUBGROUP_SIZE = 16_384


def build_loader(config, seed=0):
    corpus = SyntheticCorpus(num_documents=64, words_per_document=120, vocabulary_size=400, seed=seed)
    tokenizer = WordTokenizer(corpus, vocab_size=config.vocab_size)
    dataset = TokenDataset.from_corpus(corpus, tokenizer, sequence_length=config.sequence_length)
    return make_dataloader(dataset, batch_size=2, seed=seed)


def train(strategy: str):
    config = TINY_MODELS[MODEL]
    trainer = MiniTrainer(
        config,
        strategy=strategy,
        data_parallel_degree=DATA_PARALLEL,
        subgroup_size=SUBGROUP_SIZE,
        seed=1234,
    )
    print(f"  {strategy}: {trainer.describe()}")
    result = trainer.train(build_loader(config, seed=7), max_steps=STEPS)
    return result, trainer.master_parameters()


def main() -> None:
    print(f"Fine-tuning the {MODEL} model ({STEPS} steps, DP={DATA_PARALLEL}, "
          f"{SUBGROUP_SIZE}-parameter subgroups)\n")
    baseline_result, baseline_params = train("zero3-offload")
    dos_result, dos_params = train("deep-optimizer-states")

    print("\n step | ZeRO-3 offload loss | Deep Optimizer States loss")
    print(" -----|---------------------|---------------------------")
    for step, (a, b) in enumerate(zip(baseline_result.losses, dos_result.losses), start=1):
        print(f"  {step:3d} | {a:19.6f} | {b:26.6f}")

    identical = np.array_equal(baseline_params, dos_params)
    print(f"\nLoss decreased from {dos_result.initial_loss:.4f} to {dos_result.final_loss:.4f}")
    print(f"Master parameters identical across strategies: {identical}")
    if not identical:
        raise SystemExit("ERROR: interleaved offloading changed the training result!")


if __name__ == "__main__":
    main()
