#!/usr/bin/env python3
"""Execution policy: one object for every runtime-configuration decision.

Shows the four-level resolution order (explicit argument > active
``repro.configure(...)`` context > ``REPRO_*`` environment variables >
defaults), automatic scheduler selection (``scheduler="auto"`` flips to the
vector kernel above an op-count threshold), and the ``resolved_policy`` record
on every simulation result — so you can always introspect what actually ran.

Run with:  python examples/execution_policy.py
"""

import os

from repro import ExecutionPolicy, TrainingJobConfig, configure, simulate_job


def show(result, label: str) -> None:
    resolved = result.resolved_policy
    print(f"{label:<34} requested={resolved.policy.scheduler:<6} "
          f"ran={resolved.scheduler:<6} op_backend={resolved.op_backend:<7} "
          f"ops={resolved.op_count:>5}  makespan={result.schedule.makespan:.3f}s")


def main() -> None:
    job = TrainingJobConfig(
        model="7B", strategy="deep-optimizer-states", check_memory=False
    ).resolve()

    # 1. Defaults: op_backend="batch", scheduler="auto".  This job is far below
    #    the auto threshold, so the heap scheduler runs.
    print("Resolved defaults:", ExecutionPolicy.resolve().as_dict())
    print()
    show(simulate_job(job, iterations=1), "defaults (auto -> heap)")

    # 2. An explicit policy is the strongest level: nothing else is consulted.
    policy = ExecutionPolicy(scheduler="vector")
    show(simulate_job(job, iterations=1, policy=policy), "explicit policy (vector)")

    # 3. A configure() context scopes overrides to a block — here we drop the
    #    auto threshold to 1 op, so "auto" now selects the vector kernel.
    with configure(auto_vector_threshold=1):
        show(simulate_job(job, iterations=1), "configure context (auto -> vector)")

    # 4. Environment variables sit below contexts and arguments; schedules are
    #    byte-identical in every case, so the choice is purely about speed.
    os.environ["REPRO_SIM_SCHEDULER"] = "heap"
    try:
        show(simulate_job(job, iterations=1), "environment (heap)")
    finally:
        del os.environ["REPRO_SIM_SCHEDULER"]

    print()
    print("Every run above produced the same schedule — the policy decides how")
    print("fast it is computed, never what it contains.  Inspect the resolution")
    print("any time with:  python -m repro config")


if __name__ == "__main__":
    main()
