#!/usr/bin/env python3
"""Render the Figure 5 update-phase timelines as a text Gantt chart.

Eight optimizer subgroups per GPU, two of them statically GPU-resident: the top chart
shows the blocking TwinFlow schedule (GPU residents first, then CPU update -> downscale
-> blocking H2D per subgroup), the bottom chart the interleaved Deep Optimizer States
schedule (prefetch, GPU update and flush of every stride-th subgroup fully overlapped
with the CPU pipeline on both PCIe directions).

Run with:  python examples/update_phase_timeline.py
"""

from repro.core.scheduler import build_cpu_only_plan, build_update_plan
from repro.core.sim_executor import build_blocking_offload_update, build_interleaved_update
from repro.hardware.contention import HostContentionModel
from repro.hardware.presets import JLSE_H100_NODE
from repro.hardware.throughput import ThroughputProfile
from repro.sim.engine import SimEngine, standard_resources

NUM_SUBGROUPS = 8
SUBGROUP_PARAMS = 100_000_000
CHART_WIDTH = 96
RESOURCES = ("cpu", "gpu.compute", "pcie.h2d", "pcie.d2h")


def simulate(strategy: str, profile):
    engine = SimEngine()
    standard_resources(engine)
    sizes = {i: SUBGROUP_PARAMS for i in range(NUM_SUBGROUPS)}
    if strategy == "twinflow":
        plan = build_cpu_only_plan(NUM_SUBGROUPS, static_residents={0, 1})
        ops = build_blocking_offload_update(engine, profile, plan, sizes)
    else:
        plan = build_update_plan(NUM_SUBGROUPS, 2, static_residents={6, 7})
        ops = build_interleaved_update(engine, profile, plan, sizes, contention=HostContentionModel())
    schedule = engine.run()
    ready = max(schedule.by_id(op).end for op in ops.params_ready_ops)
    return plan, schedule, ready


def render(schedule, horizon: float) -> list[str]:
    lines = []
    for resource in RESOURCES:
        row = [" "] * CHART_WIDTH
        for item in schedule.filter(resource=resource):
            start = int(item.start / horizon * (CHART_WIDTH - 1))
            end = max(start + 1, int(item.end / horizon * (CHART_WIDTH - 1)))
            marker = "#" if item.op.kind.name.startswith("GPU") or resource == "cpu" else "="
            label = str(item.op.subgroup) if item.op.subgroup is not None else "*"
            for position in range(start, min(end, CHART_WIDTH)):
                row[position] = marker
            if start < CHART_WIDTH:
                row[start] = label[-1]
        lines.append(f"  {resource:12s} |{''.join(row)}|")
    return lines


def main() -> None:
    profile = ThroughputProfile.from_machine(JLSE_H100_NODE)
    results = {name: simulate(name, profile) for name in ("twinflow", "deep-optimizer-states")}
    horizon = max(ready for _, _, ready in results.values()) * 1.02

    for name, (plan, schedule, ready) in results.items():
        print(f"{name}  (update complete at {ready * 1e3:.0f} ms, "
              f"{len(plan.gpu_indices())} subgroups on the GPU, "
              f"{len(plan.cpu_indices())} on the CPU)")
        for line in render(schedule, horizon):
            print(line)
        print()

    twinflow_ready = results["twinflow"][2]
    dos_ready = results["deep-optimizer-states"][2]
    print(f"Interleaved update phase is {twinflow_ready / dos_ready:.2f}x faster "
          f"({twinflow_ready * 1e3:.0f} ms -> {dos_ready * 1e3:.0f} ms) on this 8-subgroup example.")


if __name__ == "__main__":
    main()
