#!/usr/bin/env python3
"""Capacity planning for resource-constrained fine-tuning (the paper's motivating use case).

Given a set of single-node machines and the model sizes of Table 2, this example
answers the questions a practitioner fine-tuning on a small node actually asks:

* does the configuration fit at all (GPU HBM and host DRAM), with and without
  activation checkpointing?
* what interleaving stride does the performance model (Equation 1) pick on this
  machine?
* how long is an iteration with each offloading strategy, and how much GPU memory
  does Deep Optimizer States save over TwinFlow at equal speed?

Run with:  python examples/capacity_planning.py
"""

from repro.common.errors import OutOfMemoryError
from repro.common.units import GIB
from repro.core.performance_model import cpu_to_gpu_update_ratio, optimal_update_stride
from repro.hardware.presets import get_machine_preset, list_machine_presets
from repro.hardware.throughput import ThroughputProfile
from repro.model.footprint import build_rank_footprint, check_fits
from repro.model.presets import MODEL_PRESETS
from repro.training.config import TrainingJobConfig
from repro.training.metrics import format_table
from repro.training.trainer import Trainer

MODELS = ("7B", "13B", "20B")
MACHINES = ("jlse-4xh100", "polaris-4xa100", "4xv100")


def fits(model, machine) -> str:
    footprint = build_rank_footprint(
        MODEL_PRESETS[model],
        data_parallel_degree=machine.num_gpus,
        microbatch_size=1,
        activation_checkpointing=True,
        stage_subgroup_on_gpu=True,
    )
    try:
        check_fits(footprint, machine)
    except OutOfMemoryError as exc:
        return f"no ({exc})"
    return (
        f"yes (peak {footprint.gpu_peak_bytes() / GIB:.0f} GiB GPU, "
        f"{footprint.host_bytes() * machine.num_gpus / GIB:.0f} GiB host)"
    )


def main() -> None:
    print("Available machine presets:", ", ".join(list_machine_presets()))
    print()

    stride_rows = []
    for machine_name in MACHINES:
        machine = get_machine_preset(machine_name)
        profile = ThroughputProfile.from_machine(machine)
        stride_rows.append(
            {
                "machine": machine_name,
                "eq1_ratio": round(cpu_to_gpu_update_ratio(profile), 2),
                "selected_stride": optimal_update_stride(profile),
                "gpu_fraction": f"{100 // optimal_update_stride(profile)}%",
            }
        )
    print("Performance-model stride per machine (Equation 1):")
    print(format_table(stride_rows))
    print()

    rows = []
    for machine_name in MACHINES:
        machine = get_machine_preset(machine_name)
        for model in MODELS:
            row = {"machine": machine_name, "model": model, "fits": fits(model, machine)}
            if row["fits"].startswith("yes"):
                for strategy in ("zero3-offload", "deep-optimizer-states"):
                    report = Trainer(
                        TrainingJobConfig(
                            model=model,
                            machine=machine_name,
                            strategy=strategy,
                            iterations=4,
                            warmup_iterations=1,
                        )
                    ).run()
                    key = "zero3_s" if strategy == "zero3-offload" else "dos_s"
                    row[key] = "OOM" if report.oom else round(report.iteration_seconds, 2)
            rows.append(row)
    print("Feasibility and iteration time per (machine, model):")
    print(format_table(rows, columns=["machine", "model", "fits", "zero3_s", "dos_s"]))


if __name__ == "__main__":
    main()
